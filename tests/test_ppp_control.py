"""Unit tests for the shared control-protocol machinery."""

import pytest

from repro.errors import ProtocolError
from repro.ppp.control import Code, ControlPacket, ControlProtocol
from repro.ppp.fsm import State
from repro.ppp.options import ConfigOption, mru_option, pack_options


class TestPacketCodec:
    def test_encode_layout(self):
        pkt = ControlPacket(Code.CONFIGURE_REQUEST, 7, b"\x01\x04\x05\xdc")
        raw = pkt.encode()
        assert raw[0] == 1 and raw[1] == 7
        assert int.from_bytes(raw[2:4], "big") == 8

    def test_round_trip(self):
        pkt = ControlPacket(Code.ECHO_REQUEST, 3, b"abcd")
        assert ControlPacket.decode(pkt.encode()) == pkt

    def test_padding_ignored(self):
        pkt = ControlPacket(Code.CONFIGURE_ACK, 1, b"xy")
        assert ControlPacket.decode(pkt.encode() + b"\x00\x00") == pkt

    def test_short_packet_rejected(self):
        with pytest.raises(ProtocolError):
            ControlPacket.decode(b"\x01\x02")

    def test_inconsistent_length_rejected(self):
        with pytest.raises(ProtocolError):
            ControlPacket.decode(b"\x01\x01\x00\xff")

    def test_options_parse(self):
        pkt = ControlPacket(1, 1, pack_options([mru_option(999)]))
        assert pkt.options() == [mru_option(999)]


class AckEverything(ControlProtocol):
    """A minimal concrete protocol for machinery tests."""

    protocol_number = 0x8099
    name = "test-cp"

    def desired_options(self):
        return [ConfigOption(1, b"\x05\xdc")]

    def judge_option(self, option):
        return "ack"


def bring_up(proto: ControlProtocol) -> None:
    proto.fsm.open()
    proto.fsm.up()


class TestNegotiationMachinery:
    def test_scr_queues_request(self):
        proto = AckEverything()
        bring_up(proto)
        raw = proto.drain_outbox()
        assert len(raw) == 1
        pkt = ControlPacket.decode(raw[0])
        assert pkt.code == Code.CONFIGURE_REQUEST
        assert pkt.options() == [ConfigOption(1, b"\x05\xdc")]

    def test_two_instances_converge(self):
        a, b = AckEverything(), AckEverything()
        bring_up(a)
        bring_up(b)
        for _ in range(4):
            for raw in a.drain_outbox():
                b.receive_packet(raw)
            for raw in b.drain_outbox():
                a.receive_packet(raw)
        assert a.state is State.OPENED and b.state is State.OPENED
        assert a.layer_up and b.layer_up
        assert a.peer_options == {1: ConfigOption(1, b"\x05\xdc")}
        assert a.local_options == {1: ConfigOption(1, b"\x05\xdc")}

    def test_stale_ack_ignored(self):
        proto = AckEverything()
        bring_up(proto)
        request = ControlPacket.decode(proto.drain_outbox()[0])
        stale = ControlPacket(Code.CONFIGURE_ACK, request.identifier + 1, request.data)
        proto.receive_packet(stale.encode())
        assert proto.state is State.REQ_SENT   # unchanged

    def test_mismatched_ack_options_ignored(self):
        proto = AckEverything()
        bring_up(proto)
        request = ControlPacket.decode(proto.drain_outbox()[0])
        wrong = ControlPacket(Code.CONFIGURE_ACK, request.identifier, b"")
        proto.receive_packet(wrong.encode())
        assert proto.state is State.REQ_SENT

    def test_reject_prunes_option(self):
        proto = AckEverything()
        bring_up(proto)
        request = ControlPacket.decode(proto.drain_outbox()[0])
        reject = ControlPacket(Code.CONFIGURE_REJECT, request.identifier, request.data)
        proto.receive_packet(reject.encode())
        # New request must omit the rejected option.
        new_request = ControlPacket.decode(proto.drain_outbox()[0])
        assert new_request.code == Code.CONFIGURE_REQUEST
        assert new_request.options() == []

    def test_unknown_code_rejected(self):
        proto = AckEverything()
        bring_up(proto)
        proto.drain_outbox()
        proto.receive_packet(ControlPacket(99, 1, b"?").encode())
        out = [ControlPacket.decode(r) for r in proto.drain_outbox()]
        assert any(p.code == Code.CODE_REJECT for p in out)

    def test_terminate_request_acked_with_same_id(self):
        proto = AckEverything()
        bring_up(proto)
        proto.drain_outbox()
        proto.receive_packet(ControlPacket(Code.TERMINATE_REQUEST, 0x55).encode())
        out = [ControlPacket.decode(r) for r in proto.drain_outbox()]
        acks = [p for p in out if p.code == Code.TERMINATE_ACK]
        assert acks and acks[0].identifier == 0x55

    def test_code_reject_of_configure_request_is_fatal(self):
        proto = AckEverything()
        bring_up(proto)
        proto.drain_outbox()
        reject = ControlPacket(
            Code.CODE_REJECT, 9, bytes([Code.CONFIGURE_REQUEST, 0, 0, 4])
        )
        proto.receive_packet(reject.encode())
        assert proto.state is State.STOPPED

    def test_code_reject_of_optional_code_tolerated(self):
        proto = AckEverything()
        bring_up(proto)
        proto.drain_outbox()
        reject = ControlPacket(
            Code.CODE_REJECT, 9, bytes([Code.ECHO_REQUEST, 0, 0, 4])
        )
        proto.receive_packet(reject.encode())
        assert proto.state is State.REQ_SENT


class NakOddMru(AckEverything):
    """Naks MRUs below 1000 with 1000 (exercises the nak path)."""

    def judge_option(self, option):
        if option.type == 1 and option.value_uint() < 1000:
            return ("nak", mru_option(1000))
        return "ack"

    def absorb_nak(self, option):
        return option   # adopt the peer's suggestion verbatim


class TestNakConvergence:
    def test_nak_adopted_and_converges(self):
        class SmallMru(NakOddMru):
            def desired_options(self):
                return [mru_option(500)]

        a, b = SmallMru(), NakOddMru()
        bring_up(a)
        bring_up(b)
        for _ in range(6):
            for raw in a.drain_outbox():
                b.receive_packet(raw)
            for raw in b.drain_outbox():
                a.receive_packet(raw)
        assert a.state is State.OPENED and b.state is State.OPENED
        assert a.local_options[1].value_uint() == 1000
