"""Unit tests for PPP encapsulation (paper Figure 1)."""

import pytest

from repro.errors import FramingError
from repro.ppp import PPPFrame
from repro.ppp.protocol_numbers import (
    PROTO_IPV4,
    PROTO_LCP,
    is_control_protocol,
    is_network_layer,
    is_valid_protocol,
    pfc_compressible,
    protocol_name,
)


class TestProtocolNumbers:
    def test_well_known_values(self):
        assert PROTO_IPV4 == 0x0021
        assert PROTO_LCP == 0xC021

    def test_validity_rule(self):
        """LSB of low octet 1, LSB of high octet 0 (RFC 1661 §2)."""
        assert is_valid_protocol(0x0021)
        assert not is_valid_protocol(0x0022)   # even low octet
        assert not is_valid_protocol(0x0121)   # odd high octet
        assert not is_valid_protocol(0x10000)
        assert not is_valid_protocol(-1)

    def test_paper_network_vs_negotiation_split(self):
        """Paper §2: 0-prefixed protocols are network layer, 1-prefixed
        negotiate (LCP/NCP)."""
        assert is_network_layer(PROTO_IPV4)
        assert not is_network_layer(PROTO_LCP)
        assert is_control_protocol(PROTO_LCP)
        assert is_control_protocol(0x8021)

    def test_pfc_rule(self):
        assert pfc_compressible(0x0021)
        assert not pfc_compressible(0xC021)

    def test_names(self):
        assert protocol_name(PROTO_LCP) == "LCP"
        assert protocol_name(0x0FFF) == "unknown-0x0FFF"


class TestEncode:
    def test_default_header(self):
        """Paper Figure 1: FF 03 then 2-byte protocol."""
        wire = PPPFrame(protocol=PROTO_IPV4, information=b"ip").encode()
        assert wire == b"\xff\x03\x00\x21ip"

    def test_acfc_drops_header(self):
        wire = PPPFrame(protocol=PROTO_IPV4, information=b"ip").encode(acfc=True)
        assert wire == b"\x00\x21ip"

    def test_pfc_shortens_protocol(self):
        wire = PPPFrame(protocol=PROTO_IPV4).encode(pfc=True)
        assert wire == b"\xff\x03\x21"

    def test_pfc_ignored_for_wide_protocols(self):
        wire = PPPFrame(protocol=PROTO_LCP).encode(pfc=True)
        assert wire == b"\xff\x03\xc0\x21"

    def test_acfc_not_applied_to_programmed_address(self):
        """RFC 1662: non-default address/control must not compress."""
        wire = PPPFrame(protocol=PROTO_IPV4, address=0x05).encode(acfc=True)
        assert wire.startswith(b"\x05\x03")

    def test_rejects_invalid_protocol(self):
        with pytest.raises(ValueError):
            PPPFrame(protocol=0x0022)

    def test_rejects_bad_address(self):
        with pytest.raises(ValueError):
            PPPFrame(protocol=PROTO_IPV4, address=0x1FF)


class TestDecode:
    def test_round_trip_plain(self):
        frame = PPPFrame(protocol=PROTO_IPV4, information=b"payload")
        assert PPPFrame.decode(frame.encode()) == frame

    def test_round_trip_all_compressions(self):
        frame = PPPFrame(protocol=PROTO_IPV4, information=b"payload")
        for acfc in (False, True):
            for pfc in (False, True):
                decoded = PPPFrame.decode(frame.encode(acfc=acfc, pfc=pfc))
                assert decoded.protocol == frame.protocol
                assert decoded.information == frame.information

    def test_compressed_header_detected_automatically(self):
        """Receivers must accept compressed frames at any time."""
        assert PPPFrame.decode(b"\x21ip").protocol == PROTO_IPV4
        assert PPPFrame.decode(b"\x00\x21ip").protocol == PROTO_IPV4

    def test_programmed_address(self):
        """The P5's programmable address matcher (MAPOS mode)."""
        frame = PPPFrame(protocol=PROTO_IPV4, address=0x0B, information=b"x")
        decoded = PPPFrame.decode(frame.encode(), expected_address=0x0B)
        assert decoded.address == 0x0B

    def test_promiscuous_decode(self):
        frame = PPPFrame(protocol=PROTO_IPV4, address=0x0B, information=b"x")
        decoded = PPPFrame.decode(frame.encode(), expected_address=None)
        assert decoded.address == 0x0B

    def test_empty_rejected(self):
        with pytest.raises(FramingError):
            PPPFrame.decode(b"")

    def test_truncated_protocol_rejected(self):
        with pytest.raises(FramingError):
            PPPFrame.decode(b"\xff\x03\x00")

    def test_malformed_protocol_rejected(self):
        # Two-octet protocol 0x0222 has an even low octet: invalid.
        with pytest.raises(FramingError):
            PPPFrame.decode(b"\xff\x03\x02\x22")

    def test_odd_first_octet_is_pfc(self):
        # FF 03 01 21 is a *valid* PFC frame for protocol 0x0001 —
        # the encoding rules make this unambiguous, not malformed.
        frame = PPPFrame.decode(b"\xff\x03\x01\x21")
        assert frame.protocol == 0x0001
        assert frame.information == b"\x21"

    def test_label(self):
        assert PPPFrame(protocol=PROTO_LCP).protocol_label == "LCP"

    def test_with_information(self):
        frame = PPPFrame(protocol=PROTO_IPV4, information=b"a")
        assert frame.with_information(b"bb").information == b"bb"
