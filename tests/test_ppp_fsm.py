"""Unit tests for the RFC 1661 negotiation automaton."""

from typing import List

import pytest

from repro.errors import ProtocolError
from repro.ppp.fsm import Event, FsmActions, NegotiationFsm, State


class RecordingActions(FsmActions):
    """Test double recording the action sequence."""

    def __init__(self):
        self.calls: List[str] = []

    def __getattribute__(self, name):
        if name in ("tlu", "tld", "tls", "tlf", "scr", "sca", "scn",
                    "str_", "sta", "scj", "ser"):
            def record():
                self.calls.append(name)
            return record
        return object.__getattribute__(self, name)


@pytest.fixture
def fsm():
    actions = RecordingActions()
    machine = NegotiationFsm(actions, name="test")
    machine.actions_log = actions
    return machine


class TestHappyPath:
    def test_initial_state(self, fsm):
        assert fsm.state is State.INITIAL

    def test_open_then_up(self, fsm):
        fsm.open()
        assert fsm.state is State.STARTING
        assert fsm.actions_log.calls == ["tls"]
        fsm.up()
        assert fsm.state is State.REQ_SENT
        assert fsm.actions_log.calls == ["tls", "scr"]
        assert fsm.restart_counter == fsm.max_configure

    def test_up_then_open(self, fsm):
        fsm.up()
        assert fsm.state is State.CLOSED
        fsm.open()
        assert fsm.state is State.REQ_SENT

    def test_full_negotiation_we_ack_first(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RCR_PLUS)
        assert fsm.state is State.ACK_SENT
        fsm.receive(Event.RCA)
        assert fsm.state is State.OPENED
        assert fsm.is_opened
        assert "tlu" in fsm.actions_log.calls

    def test_full_negotiation_peer_acks_first(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RCA)
        assert fsm.state is State.ACK_RCVD
        fsm.receive(Event.RCR_PLUS)
        assert fsm.state is State.OPENED


class TestTimeouts:
    def test_timeout_resends_request(self, fsm):
        fsm.open()
        fsm.up()
        before = fsm.restart_counter
        fsm.tick()
        assert fsm.state is State.REQ_SENT
        assert fsm.restart_counter == before - 1
        assert fsm.actions_log.calls.count("scr") == 2

    def test_counter_exhaustion_stops(self, fsm):
        fsm.open()
        fsm.up()
        for _ in range(fsm.max_configure + 1):
            fsm.tick()
        assert fsm.state is State.STOPPED
        assert "tlf" in fsm.actions_log.calls

    def test_tick_noop_when_timer_stopped(self, fsm):
        fsm.tick()
        assert fsm.state is State.INITIAL

    def test_timer_runs_only_in_unstable_states(self, fsm):
        assert not fsm.timer_running
        fsm.open()
        fsm.up()
        assert fsm.timer_running
        fsm.receive(Event.RCR_PLUS)
        fsm.receive(Event.RCA)
        assert fsm.state is State.OPENED
        assert not fsm.timer_running


class TestTermination:
    def _open(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RCR_PLUS)
        fsm.receive(Event.RCA)

    def test_close_sends_terminate(self, fsm):
        self._open(fsm)
        fsm.close()
        assert fsm.state is State.CLOSING
        assert "tld" in fsm.actions_log.calls
        assert "str_" in fsm.actions_log.calls
        assert fsm.restart_counter == fsm.max_terminate

    def test_terminate_ack_finishes(self, fsm):
        self._open(fsm)
        fsm.close()
        fsm.receive(Event.RTA)
        assert fsm.state is State.CLOSED
        assert "tlf" in fsm.actions_log.calls

    def test_peer_terminate_in_opened(self, fsm):
        self._open(fsm)
        fsm.receive(Event.RTR)
        assert fsm.state is State.STOPPING
        assert "sta" in fsm.actions_log.calls
        assert fsm.restart_counter == 0   # zrc

    def test_down_from_opened(self, fsm):
        self._open(fsm)
        fsm.down()
        assert fsm.state is State.STARTING
        assert "tld" in fsm.actions_log.calls


class TestErrorPaths:
    def test_unknown_code_any_state(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RUC)
        assert fsm.state is State.REQ_SENT
        assert "scj" in fsm.actions_log.calls

    def test_catastrophic_reject(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RXJ_MINUS)
        assert fsm.state is State.STOPPED

    def test_crossed_rca_in_ack_rcvd(self, fsm):
        """RFC 1661 'crossed connection' note: RCA in Ack-Rcvd -> scr."""
        fsm.open()
        fsm.up()
        fsm.receive(Event.RCA)
        fsm.receive(Event.RCA)
        assert fsm.state is State.REQ_SENT

    def test_impossible_event_raises(self, fsm):
        with pytest.raises(ProtocolError):
            fsm.receive(Event.RCA)   # in INITIAL

    def test_receive_rejects_admin_events(self, fsm):
        with pytest.raises(ValueError):
            fsm.receive(Event.UP)

    def test_history_recorded(self, fsm):
        fsm.open()
        fsm.up()
        assert len(fsm.history) == 2
        assert fsm.history[0].event is Event.OPEN
        assert fsm.history[1].to_state is State.REQ_SENT


class TestRenegotiation:
    def test_rcr_in_opened_renegotiates(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RCR_PLUS)
        fsm.receive(Event.RCA)
        calls_before = list(fsm.actions_log.calls)
        fsm.receive(Event.RCR_PLUS)
        assert fsm.state is State.ACK_SENT
        new_calls = fsm.actions_log.calls[len(calls_before):]
        assert new_calls == ["tld", "scr", "sca"]

    def test_echo_only_replied_in_opened(self, fsm):
        fsm.open()
        fsm.up()
        fsm.receive(Event.RXR)
        assert "ser" not in fsm.actions_log.calls
        fsm.receive(Event.RCR_PLUS)
        fsm.receive(Event.RCA)
        fsm.receive(Event.RXR)
        assert "ser" in fsm.actions_log.calls
