"""Unit tests for LCP and IPCP behaviour."""

import pytest

from repro.ppp.control import Code, ControlPacket
from repro.ppp.fsm import State
from repro.ppp.ipcp import Ipcp, IpcpConfig, format_ipv4, parse_ipv4
from repro.ppp.lcp import Lcp, LcpConfig
from repro.ppp.magic import MagicNumberTracker
from repro.ppp.options import (
    FCS_32,
    OPT_ACCM,
    OPT_MAGIC_NUMBER,
    OPT_MRU,
    ConfigOption,
    fcs_alternatives_option,
    ip_address_option,
    magic_number_option,
    mru_option,
)


def converge(a, b, rounds=8):
    a.fsm.open(); a.fsm.up()
    b.fsm.open(); b.fsm.up()
    for _ in range(rounds):
        for raw in a.drain_outbox():
            b.receive_packet(raw)
        for raw in b.drain_outbox():
            a.receive_packet(raw)
    return a.state is State.OPENED and b.state is State.OPENED


class TestLcpNegotiation:
    def test_plain_link_opens(self):
        a, b = Lcp(magic_seed=1), Lcp(magic_seed=2)
        assert converge(a, b)

    def test_magic_numbers_exchanged(self):
        a, b = Lcp(magic_seed=1), Lcp(magic_seed=2)
        converge(a, b)
        assert OPT_MAGIC_NUMBER in a.local_options
        assert a.peer_options[OPT_MAGIC_NUMBER].value_uint() == b.magic.local_magic

    def test_nonstandard_mru_negotiated(self):
        a = Lcp(LcpConfig(mru=4470), magic_seed=1)   # classic POS MTU
        b = Lcp(magic_seed=2)
        converge(a, b)
        assert b.negotiated_mru() == 4470

    def test_mru_below_peer_floor_naked(self):
        a = Lcp(LcpConfig(mru=64), magic_seed=1)
        b = Lcp(LcpConfig(min_peer_mru=128), magic_seed=2)
        converge(a, b)
        # A adopted B's floor.
        assert a.config.mru == 128
        assert b.negotiated_mru() == 128

    def test_fcs_alternatives(self):
        a = Lcp(LcpConfig(fcs_flags=FCS_32), magic_seed=1)
        b = Lcp(magic_seed=2)
        converge(a, b)
        assert a.negotiated_fcs_flags() == FCS_32

    def test_pfc_acfc(self):
        a = Lcp(LcpConfig(request_pfc=True, request_acfc=True), magic_seed=1)
        b = Lcp(magic_seed=2)
        converge(a, b)
        assert a.peer_accepted_pfc() and a.peer_accepted_acfc()

    def test_unknown_option_rejected(self):
        lcp = Lcp(magic_seed=1)
        lcp.fsm.open(); lcp.fsm.up()
        lcp.drain_outbox()
        request = ControlPacket(
            Code.CONFIGURE_REQUEST, 9, ConfigOption(0x42, b"??").encode()
        )
        lcp.receive_packet(request.encode())
        out = [ControlPacket.decode(r) for r in lcp.drain_outbox()]
        rejects = [p for p in out if p.code == Code.CONFIGURE_REJECT]
        assert rejects and rejects[0].options()[0].type == 0x42

    def test_zero_magic_naked(self):
        lcp = Lcp(magic_seed=1)
        lcp.fsm.open(); lcp.fsm.up()
        lcp.drain_outbox()
        request = ControlPacket(
            Code.CONFIGURE_REQUEST, 9, magic_number_option(0).encode()
        )
        lcp.receive_packet(request.encode())
        out = [ControlPacket.decode(r) for r in lcp.drain_outbox()]
        naks = [p for p in out if p.code == Code.CONFIGURE_NAK]
        assert naks and naks[0].options()[0].value_uint() != 0


class TestEcho:
    def _opened_pair(self):
        a, b = Lcp(magic_seed=1), Lcp(magic_seed=2)
        assert converge(a, b)
        return a, b

    def test_echo_round_trip(self):
        a, b = self._opened_pair()
        a.send_echo_request(b"probe")
        for raw in a.drain_outbox():
            b.receive_packet(raw)
        for raw in b.drain_outbox():
            a.receive_packet(raw)
        assert b.echo_requests_seen == 1
        assert a.echo_replies_seen == 1

    def test_echo_ignored_when_not_opened(self):
        lcp = Lcp(magic_seed=1)
        lcp.send_echo_request(b"probe")
        assert lcp.drain_outbox() == []

    def test_protocol_reject_recorded(self):
        a, b = self._opened_pair()
        a.send_protocol_reject(0x002B, b"ipx stuff")
        for raw in a.drain_outbox():
            b.receive_packet(raw)
        assert b.protocol_rejects == [0x002B]
        assert b.state is State.OPENED   # tolerable


class TestMagicTracker:
    def test_nonzero(self):
        assert MagicNumberTracker(seed=5).local_magic != 0

    def test_loop_detection_threshold(self):
        tracker = MagicNumberTracker(seed=5)
        for _ in range(MagicNumberTracker.LOOP_THRESHOLD):
            assert tracker.observe_peer_magic(tracker.local_magic)
        assert tracker.looped
        assert tracker.loops_detected == 1

    def test_evidence_resets_on_foreign_magic(self):
        tracker = MagicNumberTracker(seed=5)
        tracker.observe_peer_magic(tracker.local_magic)
        tracker.observe_peer_magic(tracker.local_magic ^ 1)
        assert tracker.loop_evidence == 0
        assert not tracker.looped

    def test_renumber_changes_magic(self):
        tracker = MagicNumberTracker(seed=5)
        old = tracker.local_magic
        assert tracker.renumber() != old


class TestLoopbackViaLcp:
    def test_looped_link_detected(self):
        """An endpoint receiving its own Conf-Req naks the magic."""
        lcp = Lcp(magic_seed=7)
        lcp.fsm.open(); lcp.fsm.up()
        request = ControlPacket.decode(lcp.drain_outbox()[0])
        # Loop the request straight back.
        lcp.receive_packet(request.encode())
        out = [ControlPacket.decode(r) for r in lcp.drain_outbox()]
        naks = [p for p in out if p.code == Code.CONFIGURE_NAK]
        assert naks, "own magic must be Config-Naked"


class TestIpv4Helpers:
    def test_parse_format_round_trip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_bad(self):
        for bad in ("1.2.3", "1.2.3.256", "a.b.c.d"):
            with pytest.raises(ValueError):
                parse_ipv4(bad)


class TestIpcp:
    def test_static_addresses(self):
        a = Ipcp(IpcpConfig(local_address=parse_ipv4("10.0.0.1")))
        b = Ipcp(IpcpConfig(local_address=parse_ipv4("10.0.0.2")))
        assert converge(a, b)
        assert a.peer_address_str == "10.0.0.2"
        assert b.peer_address_str == "10.0.0.1"

    def test_address_assignment(self):
        server = Ipcp(
            IpcpConfig(
                local_address=parse_ipv4("10.0.0.1"),
                assign_peer=parse_ipv4("10.0.0.99"),
            )
        )
        client = Ipcp(IpcpConfig(local_address=0))
        assert converge(server, client)
        assert client.local_address_str == "10.0.0.99"
        assert server.peer_address_str == "10.0.0.99"

    def test_unnumbered_peer_rejected_without_pool(self):
        server = Ipcp(IpcpConfig(local_address=parse_ipv4("10.0.0.1")))
        client = Ipcp(IpcpConfig(local_address=0))
        converge(server, client, rounds=4)
        # Client's address option was rejected; the link can still open
        # with an empty client request, but no address was assigned.
        assert client.config.local_address == 0

    def test_network_ready_gating(self):
        ncp = Ipcp(IpcpConfig(local_address=parse_ipv4("10.0.0.1")))
        assert not ncp.network_ready()
