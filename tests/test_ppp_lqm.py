"""Unit tests for Link Quality Monitoring (RFC 1333 LQR)."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.ppp.lqm import LinkQualityMonitor, LqrPacket


class TestPacketCodec:
    def test_round_trip(self):
        packet = LqrPacket(
            magic=0xDEADBEEF,
            last_out_lqrs=1,
            last_out_packets=100,
            last_out_octets=5000,
            peer_in_packets=98,
        )
        assert LqrPacket.decode(packet.encode()) == packet

    def test_fixed_size(self):
        assert len(LqrPacket().encode()) == 48

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            LqrPacket.decode(bytes(47))

    def test_counter_wrap_masked(self):
        packet = LqrPacket(last_out_octets=1 << 33)
        assert LqrPacket.decode(packet.encode()).last_out_octets == (1 << 33) % (1 << 32)


def run_intervals(loss: float, *, intervals: int = 4, per_interval: int = 200, seed=1):
    """A sends traffic to B; both exchange LQRs each interval."""
    rng = np.random.default_rng(seed)
    a = LinkQualityMonitor(magic=1, quality_threshold=0.05)
    b = LinkQualityMonitor(magic=2, quality_threshold=0.05)
    for _ in range(intervals):
        for _ in range(per_interval):
            a.count_tx(400)
            if rng.random() >= loss:
                b.count_rx(400)
            else:
                b.count_rx_error()
        b.receive_report(a.build_report())
        a.receive_report(b.build_report())
    return a, b


class TestLossMeasurement:
    def test_clean_link_healthy(self):
        a, b = run_intervals(0.0)
        assert a.healthy and b.healthy
        assert all(v.outbound_loss == 0.0 for v in a.verdicts)

    def test_loss_measured_accurately(self):
        a, _ = run_intervals(0.2, per_interval=2000)
        measured = a.verdicts[-1].outbound_loss
        assert measured == pytest.approx(0.2, abs=0.04)

    def test_threshold_trips(self):
        a, _ = run_intervals(0.2)
        assert not a.healthy

    def test_first_report_gives_no_verdict(self):
        a = LinkQualityMonitor(magic=1)
        b = LinkQualityMonitor(magic=2)
        assert b.receive_report(a.build_report()) is None

    def test_interval_counters(self):
        a, b = run_intervals(0.0, intervals=3)
        assert len(a.verdicts) == 2   # first exchange only primes state
        assert a.out_lqrs == 3 and a.in_lqrs == 3

    def test_error_counter_carried(self):
        _, b = run_intervals(0.3)
        assert b.in_errors > 0
        report = LqrPacket.decode(b.build_report())
        assert report.peer_in_errors == b.in_errors

    def test_healthy_before_any_verdict(self):
        assert LinkQualityMonitor().healthy
