"""Unit tests for Link Quality Monitoring (RFC 1333 LQR)."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.ppp.lqm import LinkQualityMonitor, LqrPacket, counter_delta


class TestPacketCodec:
    def test_round_trip(self):
        packet = LqrPacket(
            magic=0xDEADBEEF,
            last_out_lqrs=1,
            last_out_packets=100,
            last_out_octets=5000,
            peer_in_packets=98,
        )
        assert LqrPacket.decode(packet.encode()) == packet

    def test_fixed_size(self):
        assert len(LqrPacket().encode()) == 48

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            LqrPacket.decode(bytes(47))

    def test_counter_wrap_masked(self):
        packet = LqrPacket(last_out_octets=1 << 33)
        assert LqrPacket.decode(packet.encode()).last_out_octets == (1 << 33) % (1 << 32)


def run_intervals(loss: float, *, intervals: int = 4, per_interval: int = 200, seed=1):
    """A sends traffic to B; both exchange LQRs each interval."""
    rng = np.random.default_rng(seed)
    a = LinkQualityMonitor(magic=1, quality_threshold=0.05)
    b = LinkQualityMonitor(magic=2, quality_threshold=0.05)
    for _ in range(intervals):
        for _ in range(per_interval):
            a.count_tx(400)
            if rng.random() >= loss:
                b.count_rx(400)
            else:
                b.count_rx_error()
        b.receive_report(a.build_report())
        a.receive_report(b.build_report())
    return a, b


class TestLossMeasurement:
    def test_clean_link_healthy(self):
        a, b = run_intervals(0.0)
        assert a.healthy and b.healthy
        assert all(v.outbound_loss == 0.0 for v in a.verdicts)

    def test_loss_measured_accurately(self):
        a, _ = run_intervals(0.2, per_interval=2000)
        measured = a.verdicts[-1].outbound_loss
        assert measured == pytest.approx(0.2, abs=0.04)

    def test_threshold_trips(self):
        a, _ = run_intervals(0.2)
        assert not a.healthy

    def test_first_report_gives_no_verdict(self):
        a = LinkQualityMonitor(magic=1)
        b = LinkQualityMonitor(magic=2)
        assert b.receive_report(a.build_report()) is None

    def test_interval_counters(self):
        a, b = run_intervals(0.0, intervals=3)
        assert len(a.verdicts) == 2   # first exchange only primes state
        assert a.out_lqrs == 3 and a.in_lqrs == 3

    def test_error_counter_carried(self):
        _, b = run_intervals(0.3)
        assert b.in_errors > 0
        report = LqrPacket.decode(b.build_report())
        assert report.peer_in_errors == b.in_errors

    def test_healthy_before_any_verdict(self):
        assert LinkQualityMonitor().healthy


class TestCounterWraparound:
    """RFC 1333 counters are 32-bit; deltas must be taken mod 2^32."""

    def test_counter_delta_wraps(self):
        assert counter_delta(5, 0xFFFFFFFB) == 10
        assert counter_delta(0, 0xFFFFFFFF) == 1
        assert counter_delta(7, 7) == 0

    def _exchange(self, a, b, *, sent, received):
        """One measurement interval: A sends, then LQRs both ways."""
        for i in range(sent):
            a.count_tx(100)
            if i < received:
                b.count_rx(100)
        b.receive_report(a.build_report())
        return a.receive_report(b.build_report())

    def test_loss_measured_across_the_wrap(self):
        a = LinkQualityMonitor(magic=1, quality_threshold=0.05)
        b = LinkQualityMonitor(magic=2, quality_threshold=0.05)
        # Park both ends' packet counters just below the wrap, exactly
        # as a long-lived session would find them.
        start = (1 << 32) - 20
        a.out_packets = b.in_packets = start
        self._exchange(a, b, sent=10, received=10)  # primes the interval
        # The next interval straddles the wrap: A's out counter and
        # B's in counter both roll over mid-interval.
        verdict = self._exchange(a, b, sent=40, received=30)
        assert verdict.outbound_sent == 40
        assert verdict.outbound_received == 30
        assert verdict.outbound_loss == pytest.approx(0.25)
        assert not a.healthy

    def test_clean_wrap_interval_reports_zero_loss(self):
        a = LinkQualityMonitor(magic=1)
        b = LinkQualityMonitor(magic=2)
        a.out_packets = b.in_packets = (1 << 32) - 3
        self._exchange(a, b, sent=2, received=2)
        verdict = self._exchange(a, b, sent=8, received=8)
        assert verdict.outbound_sent == 8
        assert verdict.outbound_loss == 0.0
        assert a.healthy

    def test_inbound_direction_wraps_too(self):
        a = LinkQualityMonitor(magic=1)
        b = LinkQualityMonitor(magic=2)
        # B's transmit counter (A's inbound_expected source) wraps.
        b.out_packets = (1 << 32) - 4
        self._exchange(a, b, sent=1, received=1)
        for _ in range(10):
            b.count_tx(60)
            a.count_rx(60)
        b.receive_report(a.build_report())
        verdict = a.receive_report(b.build_report())
        assert verdict.inbound_expected == 10
        assert verdict.inbound_loss == 0.0
