"""Unit tests for configure-option TLVs."""

import pytest

from repro.errors import ProtocolError
from repro.ppp.options import (
    FCS_16,
    FCS_32,
    ConfigOption,
    accm_option,
    acfc_option,
    fcs_alternatives_option,
    ip_address_option,
    magic_number_option,
    mru_option,
    pack_options,
    pfc_option,
    unpack_options,
)


class TestTlvCodec:
    def test_encode_layout(self):
        opt = ConfigOption(1, b"\x05\xdc")
        assert opt.encode() == b"\x01\x04\x05\xdc"

    def test_empty_data(self):
        assert ConfigOption(7).encode() == b"\x07\x02"

    def test_round_trip(self):
        options = [mru_option(1400), pfc_option(), magic_number_option(0xDEADBEEF)]
        assert unpack_options(pack_options(options)) == options

    def test_unpack_empty(self):
        assert unpack_options(b"") == []

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_options(b"\x01")

    def test_bad_length_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_options(b"\x01\x01")

    def test_overrun_length_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_options(b"\x01\x08\x00\x00")

    def test_value_uint(self):
        assert mru_option(1500).value_uint() == 1500

    def test_rejects_bad_type(self):
        with pytest.raises(ValueError):
            ConfigOption(300)


class TestTypedHelpers:
    def test_mru_bounds(self):
        with pytest.raises(ValueError):
            mru_option(70000)

    def test_accm_bounds(self):
        with pytest.raises(ValueError):
            accm_option(1 << 33)

    def test_magic_bounds(self):
        with pytest.raises(ValueError):
            magic_number_option(1 << 32)

    def test_boolean_options_empty(self):
        assert pfc_option().data == b""
        assert acfc_option().data == b""

    def test_fcs_flags(self):
        assert fcs_alternatives_option(FCS_32).data == bytes([FCS_32])
        assert fcs_alternatives_option(FCS_16 | FCS_32).data == bytes([0x06])

    def test_fcs_flags_validated(self):
        with pytest.raises(ValueError):
            fcs_alternatives_option(0)
        with pytest.raises(ValueError):
            fcs_alternatives_option(0x80)

    def test_ip_address(self):
        assert ip_address_option(0x0A000001).data == b"\x0a\x00\x00\x01"
