"""Unit tests for PAP and the RFC 1661 Authenticate phase."""

import pytest

from repro.errors import NegotiationError, ProtocolError
from repro.ppp import IpcpConfig, LcpConfig, LinkPhase, PppEndpoint, connect_endpoints
from repro.ppp.ipcp import parse_ipv4
from repro.ppp.pap import (
    PapAuthenticator,
    PapClient,
    PapCode,
    encode_auth_request,
)


class TestPapCodec:
    def test_request_layout(self):
        raw = encode_auth_request(7, b"alice", b"pw")
        assert raw[0] == PapCode.AUTHENTICATE_REQUEST and raw[1] == 7
        assert int.from_bytes(raw[2:4], "big") == len(raw)
        assert raw[4] == 5 and raw[5:10] == b"alice"
        assert raw[10] == 2 and raw[11:13] == b"pw"

    def test_length_limits(self):
        with pytest.raises(ValueError):
            encode_auth_request(1, b"x" * 256, b"pw")


class TestAuthenticatorClient:
    def test_successful_auth(self):
        server = PapAuthenticator({b"alice": b"secret"})
        client = PapClient(b"alice", b"secret")
        client.start()
        for raw in client.drain_outbox():
            server.receive_packet(raw)
        assert server.done and server.authenticated == b"alice"
        for raw in server.drain_outbox():
            client.receive_packet(raw)
        assert client.done

    def test_wrong_password_naked(self):
        server = PapAuthenticator({b"alice": b"secret"})
        client = PapClient(b"alice", b"nope")
        client.start()
        for raw in client.drain_outbox():
            server.receive_packet(raw)
        assert not server.done and server.failures == 1
        for raw in server.drain_outbox():
            client.receive_packet(raw)
        assert client.failed and not client.done

    def test_unknown_user(self):
        server = PapAuthenticator({b"alice": b"secret"})
        client = PapClient(b"mallory", b"secret")
        client.start()
        for raw in client.drain_outbox():
            server.receive_packet(raw)
        assert not server.done

    def test_retransmission_on_silence(self):
        client = PapClient(b"alice", b"secret", max_retries=3)
        client.start()
        client.drain_outbox()
        client.tick()
        assert len(client.drain_outbox()) == 1

    def test_gives_up_after_retries(self):
        client = PapClient(b"alice", b"secret", max_retries=2)
        client.start()
        for _ in range(5):
            client.tick()
        assert client.failed

    def test_stale_identifier_ignored(self):
        server = PapAuthenticator({b"a": b"b"})
        client = PapClient(b"a", b"b")
        client.start()
        request = client.drain_outbox()[0]
        server.receive_packet(request)
        ack = bytearray(server.drain_outbox()[0])
        ack[1] ^= 0xFF   # wrong identifier
        client.receive_packet(bytes(ack))
        assert not client.done

    def test_truncated_request_raises(self):
        server = PapAuthenticator({})
        with pytest.raises(ProtocolError):
            server.receive_packet(bytes([1, 1, 0, 6, 5, 65]))


def _endpoints(password=b"secret"):
    server = PppEndpoint(
        "srv",
        LcpConfig(),
        IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                   assign_peer=parse_ipv4("10.0.0.9")),
        magic_seed=1,
        pap_server=PapAuthenticator({b"alice": b"secret"}),
    )
    client = PppEndpoint(
        "cli",
        LcpConfig(),
        IpcpConfig(local_address=0),
        magic_seed=2,
        pap_client=PapClient(b"alice", password),
    )
    return server, client


class TestAuthenticatePhase:
    def test_full_bring_up_with_auth(self):
        server, client = _endpoints()
        rounds = connect_endpoints(server, client)
        assert rounds < 20
        assert server.phase is LinkPhase.NETWORK
        assert server.pap_server.authenticated == b"alice"
        assert client.ipcp.local_address_str == "10.0.0.9"

    def test_network_gated_until_auth(self):
        server, client = _endpoints()
        server.open(); client.open()
        server.lower_up(); client.lower_up()
        # Run only until LCP opens, before PAP completes.
        for _ in range(3):
            client.receive_wire(server.pump())
            server.receive_wire(client.pump())
            if server.lcp.layer_up:
                break
        if server.lcp.layer_up and not server.pap_server.done:
            assert server.phase is LinkPhase.AUTHENTICATE
            assert not server.network_ready()

    def test_bad_password_blocks_network(self):
        server, client = _endpoints(password=b"wrong")
        with pytest.raises(NegotiationError):
            connect_endpoints(server, client, max_rounds=12)
        assert server.phase is LinkPhase.AUTHENTICATE
        assert not client.network_ready()
        assert client.pap_client.failed

    def test_no_auth_configured_skips_phase(self):
        a = PppEndpoint("a", LcpConfig(),
                        IpcpConfig(local_address=parse_ipv4("1.1.1.1")),
                        magic_seed=3)
        b = PppEndpoint("b", LcpConfig(),
                        IpcpConfig(local_address=parse_ipv4("1.1.1.2")),
                        magic_seed=4)
        connect_endpoints(a, b)
        assert a.phase is LinkPhase.NETWORK

    def test_datagrams_blocked_during_auth(self):
        server, client = _endpoints()
        server.open(); client.open()
        server.lower_up(); client.lower_up()
        assert not client.send_datagram(b"too early")
