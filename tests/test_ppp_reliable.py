"""Unit tests for numbered-mode reliable transmission (RFC 1663)."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.ppp.reliable import (
    FrameType,
    NumberedModeLink,
    decode_control,
    encode_i,
    encode_s,
)


class TestControlField:
    def test_i_frame_layout(self):
        """Paper §2: the control field carries sequence numbers when
        reliable transmission is negotiated."""
        control = encode_i(ns=3, nr=5)
        assert control & 1 == 0
        kind, ns, nr, pf = decode_control(control)
        assert kind is FrameType.I and ns == 3 and nr == 5 and not pf

    def test_unnumbered_default_is_different(self):
        """0x03 (UI) decodes as an I-frame pattern only by accident of
        LSB; the default mode never reaches this layer."""
        assert encode_i(0, 0) == 0x00  # != 0x03, the UI control octet

    def test_rr_rej(self):
        rr = encode_s(FrameType.RR, 6)
        rej = encode_s(FrameType.REJ, 2, final=True)
        assert decode_control(rr) == (FrameType.RR, None, 6, False)
        assert decode_control(rej) == (FrameType.REJ, None, 2, True)

    def test_round_trip_all_numbers(self):
        for ns in range(8):
            for nr in range(8):
                kind, got_ns, got_nr, _ = decode_control(encode_i(ns, nr))
                assert (kind, got_ns, got_nr) == (FrameType.I, ns, nr)

    def test_modulo_enforced(self):
        with pytest.raises(ValueError):
            encode_i(8, 0)
        with pytest.raises(ValueError):
            encode_s(FrameType.RR, 9)

    def test_unknown_supervisory_rejected(self):
        with pytest.raises(ProtocolError):
            decode_control(0x05)   # RNR not implemented


def run_pipe(a, b, *, loss_ab=0.0, loss_ba=0.0, seed=0, max_steps=400):
    """Exchange frames over lossy unidirectional pipes until quiescent."""
    rng = np.random.default_rng(seed)
    for _ in range(max_steps):
        moved = False
        for control, payload in a.drain_outbox():
            if rng.random() >= loss_ab:
                b.receive(control, payload)
            moved = True
        for control, payload in b.drain_outbox():
            if rng.random() >= loss_ba:
                a.receive(control, payload)
            moved = True
        a.tick()
        b.tick()
        if not moved and a.all_acknowledged and b.all_acknowledged:
            return
    raise AssertionError("link did not quiesce")


class TestLosslessOperation:
    def test_in_order_delivery(self):
        a, b = NumberedModeLink("a"), NumberedModeLink("b")
        msgs = [bytes([i]) * 3 for i in range(20)]
        for msg in msgs:
            a.send(msg)
        run_pipe(a, b)
        assert b.delivered == msgs
        assert a.stats.i_resent == 0

    def test_window_limits_inflight(self):
        a = NumberedModeLink("a", window=3)
        for i in range(10):
            a.send(bytes([i]))
        # Only `window` frames may leave before any ack.
        assert len(a.drain_outbox()) == 3

    def test_acks_open_window(self):
        a, b = NumberedModeLink("a", window=2), NumberedModeLink("b")
        for i in range(6):
            a.send(bytes([i]))
        run_pipe(a, b)
        assert len(b.delivered) == 6

    def test_bidirectional_piggyback(self):
        a, b = NumberedModeLink("a"), NumberedModeLink("b")
        for i in range(5):
            a.send(b"a%d" % i)
            b.send(b"b%d" % i)
        run_pipe(a, b)
        assert len(a.delivered) == len(b.delivered) == 5

    def test_window_validation(self):
        with pytest.raises(ValueError):
            NumberedModeLink(window=8)


class TestLossRecovery:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_delivery_despite_loss(self, loss):
        a, b = NumberedModeLink("a"), NumberedModeLink("b")
        msgs = [bytes([i]) * 4 for i in range(30)]
        for msg in msgs:
            a.send(msg)
        run_pipe(a, b, loss_ab=loss, loss_ba=loss, seed=17)
        assert b.delivered == msgs
        assert a.stats.i_resent > 0

    def test_rej_triggers_go_back_n(self):
        a, b = NumberedModeLink("a"), NumberedModeLink("b")
        for i in range(4):
            a.send(bytes([i]))
        frames = a.drain_outbox()
        # Drop frame 1; deliver 0, 2, 3.
        b.receive(*frames[0])
        b.receive(*frames[2])
        b.receive(*frames[3])
        assert b.stats.rej_sent == 1
        # REJ back to A triggers retransmission of 1, 2, 3.
        for control, payload in b.drain_outbox():
            a.receive(control, payload)
        retransmits = a.drain_outbox()
        assert len(retransmits) == 3
        for control, payload in retransmits:
            b.receive(control, payload)
        assert b.delivered == [bytes([i]) for i in range(4)]

    def test_duplicate_i_frames_not_delivered_twice(self):
        a, b = NumberedModeLink("a"), NumberedModeLink("b")
        a.send(b"once")
        (control, payload), = a.drain_outbox()
        b.receive(control, payload)
        b.receive(control, payload)   # duplicate (e.g. spurious rexmit)
        assert b.delivered == [b"once"]
        assert b.stats.out_of_sequence == 1

    def test_timeout_retransmits_when_ack_lost(self):
        a, b = NumberedModeLink("a", timer_limit=2), NumberedModeLink("b")
        a.send(b"payload")
        for control, payload in a.drain_outbox():
            b.receive(control, payload)
        b.drain_outbox()   # the RR is lost
        for _ in range(4):
            a.tick()
        assert a.stats.timeouts >= 1
        # Retransmission reaches B (duplicate), whose RR finally lands.
        for control, payload in a.drain_outbox():
            b.receive(control, payload)
        for control, payload in b.drain_outbox():
            a.receive(control, payload)
        assert a.all_acknowledged
        assert b.delivered == [b"payload"]

    def test_sequence_wraparound(self):
        """More than 8 frames exercises the modulo arithmetic."""
        a, b = NumberedModeLink("a"), NumberedModeLink("b")
        msgs = [bytes([i]) for i in range(50)]
        for msg in msgs:
            a.send(msg)
        run_pipe(a, b, loss_ab=0.15, seed=23)
        assert b.delivered == msgs
