"""Unit tests for the full PPP endpoint / phase machinery."""

import pytest

from repro.crc import CRC16_X25, CRC32
from repro.errors import NegotiationError
from repro.ppp import (
    IpcpConfig,
    LcpConfig,
    LinkPhase,
    PppEndpoint,
    connect_endpoints,
)
from repro.ppp.frame import PPPFrame
from repro.ppp.ipcp import parse_ipv4
from repro.ppp.options import FCS_16, FCS_32


def make_pair(**a_kwargs):
    a = PppEndpoint(
        "A",
        a_kwargs.pop("lcp", LcpConfig()),
        IpcpConfig(
            local_address=parse_ipv4("10.0.0.1"),
            assign_peer=parse_ipv4("10.0.0.2"),
        ),
        magic_seed=11,
        **a_kwargs,
    )
    b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0), magic_seed=22)
    return a, b


class TestBringUp:
    def test_phases_progress(self):
        a, b = make_pair()
        assert a.phase is LinkPhase.DEAD
        rounds = connect_endpoints(a, b)
        assert rounds < 20
        assert a.phase is LinkPhase.NETWORK and b.phase is LinkPhase.NETWORK
        assert a.network_ready() and b.network_ready()

    def test_address_assignment_through_full_stack(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        assert b.ipcp.local_address_str == "10.0.0.2"

    def test_no_convergence_raises(self):
        a, _ = make_pair()
        # B never brought up: A can't converge.
        b = PppEndpoint("B", magic_seed=22)
        a.open(); a.lower_up()
        with pytest.raises(NegotiationError):
            connect_endpoints(a, b, max_rounds=5, bring_up=False)


class TestDatagramFlow:
    def test_datagram_delivery(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        assert a.send_datagram(b"E\x00datagram")
        b.receive_wire(a.pump())
        proto, payload = b.datagrams_in.popleft()
        assert proto == 0x0021 and payload == b"E\x00datagram"
        assert b.counters.datagrams_rx == 1

    def test_datagram_refused_before_network_phase(self):
        a, b = make_pair()
        assert not a.send_datagram(b"too early")
        assert a.counters.discarded_wrong_phase == 1

    def test_compressed_frames_on_the_wire(self):
        a, b = make_pair(lcp=LcpConfig(request_pfc=True, request_acfc=True))
        connect_endpoints(a, b)
        a.send_datagram(b"x")
        wire = a.pump()
        # ACFC+PFC: body between flags starts with the 1-byte protocol.
        body = wire.strip(b"\x7e")
        assert body[0] == 0x21
        b.receive_wire(wire)
        assert b.datagrams_in.popleft() == (0x0021, b"x")

    def test_unknown_protocol_gets_protocol_reject(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        wire = a.tx_framer.encode(PPPFrame(protocol=0x002B, information=b"?").encode())
        b.receive_wire(wire)
        a.receive_wire(b.pump())
        assert 0x002B in a.lcp.protocol_rejects
        assert b.counters.protocol_rejects_tx == 1


class TestFcsSwitching:
    def test_fcs32_negotiated_switches_framers(self):
        a = PppEndpoint(
            "A",
            LcpConfig(fcs_flags=FCS_32),
            IpcpConfig(local_address=parse_ipv4("1.1.1.1")),
            fcs_spec=CRC16_X25,
            magic_seed=1,
        )
        b = PppEndpoint(
            "B",
            LcpConfig(fcs_flags=FCS_32),
            IpcpConfig(local_address=parse_ipv4("1.1.1.2")),
            fcs_spec=CRC16_X25,
            magic_seed=2,
        )
        connect_endpoints(a, b)
        assert a.tx_framer.fcs_spec.width == 32
        assert b.rx_framer.fcs_spec.width == 32
        # Data still flows after the switch.
        a.send_datagram(b"after switch")
        b.receive_wire(a.pump())
        assert b.datagrams_in.popleft()[1] == b"after switch"

    def test_default_keeps_constructor_fcs(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        assert a.tx_framer.fcs_spec is CRC32


class TestTeardown:
    def test_close_returns_to_dead(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        a.close()
        b.receive_wire(a.pump())
        a.receive_wire(b.pump())
        assert a.phase is LinkPhase.DEAD
        assert b.phase is LinkPhase.TERMINATE
        for _ in range(4):
            b.tick()
        assert b.phase is LinkPhase.DEAD

    def test_lower_down_propagates(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        a.lower_down()
        assert not a.network_ready()
        assert not a.ipcp.layer_up

    def test_datagrams_blocked_after_down(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        a.lower_down()
        assert not a.send_datagram(b"late")


class TestCounters:
    def test_frame_counters(self):
        a, b = make_pair()
        connect_endpoints(a, b)
        tx_before = a.counters.frames_tx
        a.send_datagram(b"1")
        a.send_datagram(b"2")
        b.receive_wire(a.pump())
        assert a.counters.frames_tx == tx_before + 2
        assert a.counters.datagrams_tx == 2
