"""The ``repro resilience`` subcommand: exit codes and reporter output."""

import json

from repro.cli import main
from repro.resilience.report import JSON_SCHEMA_VERSION

# A small but real soak: chaos, failover and recovery in ~0.3 s.
SMALL = ["resilience", "--soak", "--intervals", "120", "--events", "6",
         "--seed", "3"]


def test_soak_exits_zero_and_reports(capsys):
    assert main(SMALL) == 0
    out = capsys.readouterr().out
    assert "resilience soak: 120 intervals" in out
    assert "clean: all resilience invariants held" in out
    assert "switch @" in out
    assert "reversions:" in out


def test_json_output_is_machine_parseable(capsys):
    assert main(SMALL + ["--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["traffic"]["undetected_corruptions"] == 0
    assert payload["traffic"]["submitted"] == 120 * 16
    assert payload["config"]["switchover_loss_budget"] == 5 * 16
    assert payload["final_active"] == "working"
    assert any(e["kind"] == "cut" for e in payload["chaos"])
    assert payload["switchovers"]
    assert payload["events"]


def test_json_shorthand_flag(capsys):
    assert main(SMALL + ["--json"]) == 0
    assert json.loads(capsys.readouterr().out)["ok"] is True


def test_json_output_is_stable_across_runs(capsys):
    args = SMALL + ["--json"]
    main(args)
    first = capsys.readouterr().out
    main(args)
    second = capsys.readouterr().out
    assert first == second


def test_events_out_writes_the_artifact(tmp_path, capsys):
    out_path = tmp_path / "events.json"
    assert main(SMALL + ["--events-out", str(out_path)]) == 0
    assert f"wrote {out_path}" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["ok"] is True
    kinds = {e["category"] for e in payload["events"]}
    assert {"chaos", "aps"} <= kinds


def test_schedule_mode_prints_without_running(capsys):
    assert main(["resilience", "--schedule", "--intervals", "300",
                 "--events", "8", "--seed", "5"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 8
    assert any("cut" in line for line in out)
    assert any("sabotage" in line for line in out)


def test_bad_arguments_are_a_clean_cli_error(capsys):
    assert main(["resilience", "--intervals", "0"]) == 2
    assert "--intervals >= 1" in capsys.readouterr().err


def test_unsurvivable_chaos_schedule_is_rejected():
    # 48 intervals cannot host a guarded cut + wait-to-restore cycle.
    import pytest

    with pytest.raises(ValueError):
        main(["resilience", "--intervals", "48", "--events", "6"])
