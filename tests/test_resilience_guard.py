"""FastpathGuard: spot-checks, quarantine, cycle fallback, reinstatement."""

import numpy as np
import pytest

from repro.core.config import P5Config
from repro.resilience import EventLog, FastpathGuard, GuardMode


@pytest.fixture
def config():
    return P5Config.thirty_two_bit(max_frame_octets=512)


def frames(rng, count=4, size=32):
    return [rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            for _ in range(count)]


def pump(guard, batch, interval):
    """One clean interval through the guard's TX and RX."""
    line = guard.encode(batch, interval)
    return guard.decode(line, interval)


class TestFastMode:
    def test_clean_traffic_stays_fast_and_delivers(self, config, rng):
        guard = FastpathGuard(config, name="lane", check_every=4)
        for interval in range(8):
            batch = frames(rng)
            delta = pump(guard, batch, interval)
            assert delta.frames_ok == len(batch)
            assert [f for f, good in delta.frames if good] == batch
        assert guard.mode is GuardMode.FAST
        assert guard.spot_checks == 2  # intervals 4 and 8's encodes
        assert not guard.quarantines

    def test_frame_split_across_intervals_reassembles(self, config, rng):
        guard = FastpathGuard(config, name="lane", check_every=100)
        batch = frames(rng, count=2)
        line = guard.encode(batch, 0)
        cut = len(line) // 2
        first = guard.decode(line[:cut], 0)
        second = guard.decode(line[cut:], 1)
        got = [f for delta in (first, second)
               for f, good in delta.frames if good]
        assert got == batch

    def test_spot_check_events_are_logged(self, config, rng):
        log = EventLog()
        guard = FastpathGuard(config, name="lane", check_every=1, log=log)
        pump(guard, frames(rng), 0)
        assert log.select(category="fastpath", kind="spot-check-ok")


class TestQuarantine:
    def test_sabotage_is_caught_and_quarantines(self, config, rng):
        log = EventLog()
        guard = FastpathGuard(config, name="lane", check_every=100, log=log)
        guard.arm_sabotage()
        batch = frames(rng)
        line = guard.encode(batch, 0)
        assert guard.mode is GuardMode.QUARANTINED
        assert guard.quarantines
        quarantine_events = log.select(category="fastpath", kind="quarantine")
        assert quarantine_events
        assert "diverges" in str(quarantine_events[0].detail["diagnostic"])
        # The sabotaged frame fails FCS at the receiver — never
        # delivered as good.
        delta = guard.decode(line, 0)
        good = [f for f, ok in delta.frames if ok]
        assert batch[0] not in good
        assert delta.fcs_errors >= 1

    def test_quarantined_traffic_flows_through_cycle_engine(self, config, rng):
        guard = FastpathGuard(config, name="lane", check_every=100,
                              reinstate_after=100)
        guard.arm_sabotage()
        pump(guard, frames(rng), 0)
        assert guard.mode is GuardMode.QUARANTINED
        batch = frames(rng, count=3)
        delta = pump(guard, batch, 1)
        assert delta.mode == GuardMode.QUARANTINED.value
        assert [f for f, good in delta.frames if good] == batch

    def test_reinstatement_after_clean_agreement_streak(self, config, rng):
        log = EventLog()
        guard = FastpathGuard(config, name="lane", check_every=100,
                              reinstate_after=3, log=log)
        guard.arm_sabotage()
        pump(guard, frames(rng), 0)
        assert guard.mode is GuardMode.QUARANTINED
        for interval in range(1, 4):
            delta = pump(guard, frames(rng), interval)
            assert delta.frames_ok == 4
        assert guard.mode is GuardMode.FAST
        assert guard.reinstatements == 1
        assert log.select(category="fastpath", kind="reinstate")
        # And the reinstated fastpath keeps delivering.
        batch = frames(rng)
        delta = pump(guard, batch, 5)
        assert [f for f, good in delta.frames if good] == batch

    def test_open_tail_carries_across_the_mode_switch(self, config, rng):
        """A frame in flight when the guard quarantines is not lost."""
        guard = FastpathGuard(config, name="lane", check_every=100)
        batch = frames(rng, count=2)
        line = guard.encode(batch, 0)
        cut = len(line) - 8  # split inside the final frame
        first = guard.decode(line[:cut], 0)
        guard.arm_sabotage()
        sab_batch = frames(rng)
        sab_line = guard.encode(sab_batch, 1)
        assert guard.mode is GuardMode.QUARANTINED
        second = guard.decode(line[cut:] + sab_line, 1)
        got = [f for delta in (first, second)
               for f, good in delta.frames if good]
        assert batch[0] in got
        assert batch[1] in got

    def test_resync_drops_delineation_state(self, config, rng):
        guard = FastpathGuard(config, name="lane", check_every=100)
        batch = frames(rng, count=2)
        line = guard.encode(batch, 0)
        guard.decode(line[: len(line) - 8], 0)
        guard.resync()
        delta = guard.decode(line[len(line) - 8:], 1)
        # The tail of the split frame alone cannot decode as good.
        assert batch[1] not in [f for f, good in delta.frames if good]

    def test_validation(self, config):
        with pytest.raises(ValueError):
            FastpathGuard(config, name="x", check_every=0)
        with pytest.raises(ValueError):
            FastpathGuard(config, name="x", reinstate_after=0)
