"""Property-based resilience invariants (hypothesis).

Two properties pin down the supervisor's core safety contract:

1. **Switch pacing** — under *any* sequence of lane-state inputs and
   forced-switch commands, the APS controller completes at most one
   switch in any ``hold_off``-interval window.
2. **No corrupt delivery** — whatever a seeded burst (within the
   CRC-32 guaranteed-detection bound) does to the wire bytes, the
   guard never hands up a good-flagged frame whose payload was not
   transmitted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import P5Config
from repro.resilience import (
    ApsController,
    FastpathGuard,
    LaneState,
    LaneWire,
)

lane_states = st.sampled_from(list(LaneState))
hold_offs = st.integers(min_value=1, max_value=5)

# One interval's stimulus: lane states plus an optional forced switch.
stimuli = st.lists(
    st.tuples(lane_states, lane_states, st.booleans()),
    min_size=1,
    max_size=60,
)


@given(hold_off=hold_offs, schedule=stimuli)
@settings(max_examples=200, deadline=None)
def test_at_most_one_switch_per_hold_off_window(hold_off, schedule):
    aps = ApsController(hold_off=hold_off, wait_to_restore=hold_off + 2)
    switch_intervals = []
    for interval, (working, protect, force) in enumerate(schedule):
        if aps.evaluate(interval, working, protect):
            switch_intervals.append(interval)
        if force and aps.force_switch(interval, reason="prop"):
            switch_intervals.append(interval)
    # Every hold_off-wide window contains at most one completed switch.
    for a, b in zip(switch_intervals, switch_intervals[1:]):
        assert b - a > hold_off


@given(hold_off=hold_offs, schedule=stimuli)
@settings(max_examples=100, deadline=None)
def test_hold_off_requires_persistent_condition(hold_off, schedule):
    """No switch fires before the condition has held hold_off intervals."""
    aps = ApsController(hold_off=hold_off, wait_to_restore=hold_off + 2)
    bad_streak = 0
    for interval, (working, protect, _force) in enumerate(schedule):
        active_bad = (working if aps.active == "working" else protect) in (
            LaneState.DEGRADED, LaneState.FAILED
        )
        record = aps.evaluate(interval, working, protect)
        bad_streak = bad_streak + 1 if active_bad else 0
        if record and record.request.name in ("SIGNAL_FAIL", "SIGNAL_DEGRADE"):
            assert bad_streak >= hold_off


frame_batches = st.lists(
    st.binary(min_size=6, max_size=48), min_size=1, max_size=4
)


@given(
    batch=frame_batches,
    burst_bits=st.integers(min_value=1, max_value=32),
    wire_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_never_delivers_a_corrupt_frame_as_good(batch, burst_bits, wire_seed):
    config = P5Config.thirty_two_bit(max_frame_octets=512)
    guard = FastpathGuard(config, name="prop", check_every=10_000)
    wire = LaneWire("prop.wire", seed=wire_seed)
    wire.arm_burst(burst_bits)
    line = guard.encode(batch, 0)
    delta = guard.decode(wire.transmit(line, 0), 0)
    submitted = set(batch)
    for content, good in delta.frames:
        if good:
            assert content in submitted


@given(
    batch=frame_batches,
    burst_bits=st.integers(min_value=1, max_value=32),
    wire_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_quarantined_guard_is_equally_incorruptible(
    batch, burst_bits, wire_seed
):
    """The cycle-mode receive path holds the same no-corrupt-delivery
    contract as the fast path."""
    config = P5Config.thirty_two_bit(max_frame_octets=512)
    guard = FastpathGuard(config, name="prop", check_every=10_000)
    guard.arm_sabotage()
    guard.encode([b"primer-frame"], 0)  # trips the quarantine
    wire = LaneWire("prop.wire", seed=wire_seed)
    wire.arm_burst(burst_bits)
    line = guard.encode(batch, 1)
    delta = guard.decode(wire.transmit(line, 1), 1)
    submitted = set(batch)
    for content, good in delta.frames:
        if good:
            assert content in submitted
