"""LinkSupervisor: chaos soaks, failover, recovery, and the verdicts."""

import pytest

from repro.errors import LinkDownError
from repro.resilience import (
    PROTECT,
    WORKING,
    ChaosEvent,
    LinkSupervisor,
    SupervisorConfig,
)
from repro.resilience.guard import GuardMode
from repro.sonet.aps import ApsRequest


def small_config(**overrides):
    base = dict(
        intervals=120, frames_per_interval=4, chaos_events=6, seed=3
    )
    base.update(overrides)
    return SupervisorConfig(**base)


@pytest.fixture(scope="module")
def soak_result():
    """One shared small soak (module-scoped: the soak is ~0.3 s)."""
    return LinkSupervisor(small_config()).run_soak()


class TestCleanLink:
    def test_chaos_free_soak_is_lossless(self):
        sup = LinkSupervisor(small_config(), chaos=[])
        result = sup.run_soak()
        assert result.ok
        assert result.frames_lost == 0
        assert result.frames_delivered == result.frames_submitted
        assert not result.switchovers
        assert result.final_active == WORKING

    def test_deterministic_from_seed(self):
        first = LinkSupervisor(small_config()).run_soak()
        second = LinkSupervisor(small_config()).run_soak()
        assert first.frames_lost == second.frames_lost
        assert [r.as_dict() for r in first.switchovers] == [
            r.as_dict() for r in second.switchovers
        ]
        assert first.log.as_dicts() == second.log.as_dicts()


class TestChaosSoak:
    def test_all_invariants_hold(self, soak_result):
        assert soak_result.violations == []
        assert soak_result.ok

    def test_no_undetected_corruption(self, soak_result):
        assert soak_result.undetected_corruptions == 0

    def test_working_cut_forces_failover_and_reversion(self, soak_result):
        requests = [r.request for r in soak_result.switchovers]
        assert ApsRequest.SIGNAL_FAIL in requests
        assert ApsRequest.WAIT_TO_RESTORE in requests
        assert soak_result.reversions >= 1
        assert soak_result.final_active == WORKING

    def test_switchover_loss_stays_within_budget(self, soak_result):
        budget = soak_result.config.switchover_loss_budget
        assert soak_result.switch_losses
        for entry in soak_result.switch_losses:
            assert entry["loss"] <= budget

    def test_sabotage_degrades_fastpath_but_traffic_flows(self, soak_result):
        quarantines = sum(
            len(lane["guard"]["quarantines"])
            for lane in soak_result.lanes.values()
        )
        assert quarantines >= 1
        assert soak_result.degraded_delivered >= 1
        # Every lane ends reinstated, back in fast mode.
        for lane in soak_result.lanes.values():
            assert lane["guard"]["mode"] == GuardMode.FAST.value

    def test_event_log_covers_every_category(self, soak_result):
        categories = {e.category for e in soak_result.log.events}
        assert {"chaos", "aps", "fastpath"} <= categories
        assert soak_result.log.select(category="aps", kind="switch")

    def test_lcp_ends_opened_on_both_lanes(self, soak_result):
        for lane in soak_result.lanes.values():
            assert lane["lcp_state"] == "OPENED"


class TestLinkDown:
    def double_cut(self, at=30, duration=80):
        return [
            ChaosEvent(at, WORKING, "cut", duration=duration),
            ChaosEvent(at, PROTECT, "cut", duration=duration),
        ]

    def test_both_lanes_cut_raises_typed_error(self):
        sup = LinkSupervisor(small_config(), chaos=self.double_cut())
        with pytest.raises(LinkDownError) as excinfo:
            sup.run_soak()
        assert "both lanes down" in str(excinfo.value)
        # The exception carries the structured black-box log.
        assert excinfo.value.events
        assert any(e.kind == "link-down" for e in excinfo.value.events)

    def test_ladder_climbed_before_quarantine(self):
        sup = LinkSupervisor(small_config(), chaos=self.double_cut())
        with pytest.raises(LinkDownError) as excinfo:
            sup.run_soak()
        steps = [
            e.kind for e in excinfo.value.events if e.category == "ladder"
        ]
        for rung in ("resync", "flush", "renegotiate", "switch"):
            assert rung in steps
        # LCP renegotiation on a cut lane drains TO+ to TO- (RFC 1661).
        renegs = [
            e for e in excinfo.value.events
            if e.kind == "renegotiate-result"
        ]
        assert renegs and renegs[0].detail["opened"] is False

    def test_raise_can_be_disabled(self):
        sup = LinkSupervisor(
            small_config(raise_on_quarantine=False),
            chaos=self.double_cut(),
        )
        result = sup.run_soak()
        assert sup.quarantine_declared
        assert result.log.select(category="ladder", kind="link-down")

    def test_link_recovers_when_the_cut_heals(self):
        """A short double cut is survived: ladder recovers, no raise."""
        sup = LinkSupervisor(
            small_config(),
            chaos=[
                ChaosEvent(30, WORKING, "cut", duration=2),
                ChaosEvent(30, PROTECT, "cut", duration=2),
            ],
        )
        result = sup.run_soak()
        assert result.undetected_corruptions == 0
        assert result.final_active == WORKING


class TestConfig:
    def test_loss_budget_formula(self):
        cfg = SupervisorConfig(hold_off=2, frames_per_interval=16)
        assert cfg.switchover_loss_budget == (2 + 3) * 16

    def test_smoke_scale_meets_acceptance_floor(self):
        cfg = SupervisorConfig()
        assert cfg.intervals * cfg.frames_per_interval >= 10_000
        assert cfg.chaos_events >= 20
