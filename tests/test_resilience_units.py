"""Resilience building blocks: health, APS, ladder, wire, chaos, events."""

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    PROTECT,
    WORKING,
    ApsController,
    EventLog,
    HealthEngine,
    HealthSample,
    LaneState,
    LaneWire,
    RecoveryLadder,
    RecoveryStep,
    chaos_schedule,
)
from repro.resilience.ladder import LADDER
from repro.sonet.aps import ApsRequest


def clean(expected=17):
    return HealthSample(expected_frames=expected, delivered_ok=expected)


def dark(expected=17):
    return HealthSample(
        expected_frames=expected, delivered_ok=0, lqr_seen=False
    )


class TestHealthEngine:
    def test_clean_intervals_stay_ok(self):
        engine = HealthEngine("working")
        for _ in range(10):
            assert engine.update(clean()) is LaneState.OK
        assert engine.usable

    def test_dark_interval_fails_immediately(self):
        engine = HealthEngine("working")
        assert engine.update(dark()) is LaneState.FAILED
        assert not engine.usable

    def test_single_fcs_error_is_tolerated(self):
        engine = HealthEngine("working")
        state = engine.update(HealthSample(
            expected_frames=17, delivered_ok=16, fcs_errors=1,
        ))
        assert state is LaneState.OK

    def test_errored_interval_degrades_not_fails(self):
        engine = HealthEngine("working")
        state = engine.update(HealthSample(
            expected_frames=17, delivered_ok=15, fcs_errors=2,
            framing_faults=2, hunt_octets=12,
        ))
        assert state is LaneState.DEGRADED
        assert engine.usable

    def test_recovery_needs_consecutive_clean_intervals(self):
        engine = HealthEngine("working", recover_intervals=2)
        engine.update(dark())
        assert engine.state is LaneState.FAILED
        # One clean interval is not enough...
        engine.update(clean())
        assert engine.state is LaneState.FAILED
        # ...two consecutive are; a clean score above sd_exit carries
        # the streak so OK follows one interval later.
        engine.update(clean())
        assert engine.state is LaneState.DEGRADED
        engine.update(clean())
        assert engine.state is LaneState.OK

    def test_recovery_streak_resets_on_relapse(self):
        engine = HealthEngine("working", recover_intervals=2)
        engine.update(dark())
        engine.update(clean())
        engine.update(dark())  # relapse
        engine.update(clean())
        assert engine.state is LaneState.FAILED

    def test_lqr_silence_and_loss_are_symptoms(self):
        engine = HealthEngine("working")
        state = engine.update(HealthSample(
            expected_frames=17, delivered_ok=17,
            lqr_seen=False, outbound_loss=0.5,
        ))
        assert state is LaneState.DEGRADED

    def test_idle_interval_judged_by_symptoms_only(self):
        engine = HealthEngine("working")
        assert engine.update(HealthSample(0, 0)) is LaneState.OK

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            HealthEngine("x", sf_enter=0.9, sf_exit=0.5)
        with pytest.raises(ConfigError):
            HealthEngine("x", recover_intervals=0)


class TestApsController:
    def test_failed_active_switches_after_hold_off(self):
        aps = ApsController(hold_off=2)
        assert aps.evaluate(0, LaneState.FAILED, LaneState.OK) is None
        record = aps.evaluate(1, LaneState.FAILED, LaneState.OK)
        assert record is not None
        assert record.request is ApsRequest.SIGNAL_FAIL
        assert aps.active == PROTECT

    def test_one_errored_interval_never_switches(self):
        aps = ApsController(hold_off=2)
        assert aps.evaluate(0, LaneState.DEGRADED, LaneState.OK) is None
        assert aps.evaluate(1, LaneState.OK, LaneState.OK) is None
        assert aps.active == WORKING
        assert not aps.switches

    def test_no_switch_onto_a_failed_standby(self):
        aps = ApsController(hold_off=1)
        for interval in range(6):
            assert aps.evaluate(
                interval, LaneState.FAILED, LaneState.FAILED
            ) is None
        assert aps.active == WORKING

    def test_wait_to_restore_reverts_to_working(self):
        aps = ApsController(hold_off=1, wait_to_restore=3)
        aps.evaluate(0, LaneState.FAILED, LaneState.OK)
        assert aps.active == PROTECT
        reverted = None
        for interval in range(1, 10):
            reverted = aps.evaluate(interval, LaneState.OK, LaneState.OK)
            if reverted:
                break
        assert reverted is not None
        assert reverted.request is ApsRequest.WAIT_TO_RESTORE
        assert aps.active == WORKING
        # WTR streak starts at interval 1; 3 healthy intervals end at 3,
        # and spacing (> hold_off after the switch at 0) also allows it.
        assert reverted.interval == 3

    def test_non_revertive_stays_on_protect(self):
        aps = ApsController(hold_off=1, revertive=False)
        aps.evaluate(0, LaneState.FAILED, LaneState.OK)
        for interval in range(1, 10):
            assert aps.evaluate(interval, LaneState.OK, LaneState.OK) is None
        assert aps.active == PROTECT

    def test_force_switch_respects_spacing(self):
        log = EventLog()
        aps = ApsController(hold_off=3, log=log)
        assert aps.force_switch(5, reason="test") is not None
        assert aps.force_switch(7, reason="too soon") is None
        assert log.select(category="aps", kind="force-refused")
        assert aps.force_switch(9, reason="spaced out") is not None

    def test_k1_k2_signalling_bytes(self):
        aps = ApsController(hold_off=1)
        assert aps.k1_byte() == 0  # NO_REQUEST on working
        aps.evaluate(0, LaneState.FAILED, LaneState.OK)
        # SIGNAL_FAIL (0b1100) in bits 1-4, protect channel in 5-8.
        assert aps.k1_byte() == (0b1100 << 4) | 1
        assert aps.k2_byte() == (1 << 4) | 0b100

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ApsController(hold_off=0)
        with pytest.raises(ConfigError):
            ApsController(hold_off=4, wait_to_restore=2)


class TestRecoveryLadder:
    def test_escalation_order_is_the_ladder(self):
        ladder = RecoveryLadder(retries_per_step=1, jitter=0, seed=1)
        steps = []
        interval = 0
        while len(steps) < len(LADDER):
            action = ladder.next_action(interval)
            if action:
                steps.append(action.step)
            interval += 1
        assert steps == list(LADDER)

    def test_retries_before_escalation(self):
        ladder = RecoveryLadder(retries_per_step=2, jitter=0, seed=1)
        first = ladder.next_action(0)
        second = ladder.next_action(first.backoff)
        assert first.step is second.step is RecoveryStep.RESYNC
        assert (first.attempt, second.attempt) == (1, 2)
        third = ladder.next_action(first.backoff + second.backoff)
        assert third.step is RecoveryStep.FLUSH

    def test_backoff_grows_exponentially_and_caps(self):
        ladder = RecoveryLadder(
            retries_per_step=1, backoff_base=1, backoff_cap=8,
            jitter=0, seed=1,
        )
        backoffs = []
        interval = 0
        for _ in range(7):
            action = ladder.next_action(interval)
            backoffs.append(action.backoff)
            interval += action.backoff
        assert backoffs == [1, 2, 4, 8, 8, 8, 8]

    def test_nothing_fires_during_backoff(self):
        ladder = RecoveryLadder(retries_per_step=1, jitter=0, seed=1)
        action = ladder.next_action(0)
        for interval in range(1, action.backoff):
            assert ladder.next_action(interval) is None

    def test_quarantine_rung_reemits_without_advancing(self):
        ladder = RecoveryLadder(retries_per_step=1, jitter=0, seed=1)
        interval = 0
        for _ in range(10):
            action = ladder.next_action(interval)
            interval += action.backoff if action else 1
        assert ladder.current_step is RecoveryStep.QUARANTINE
        assert ladder.quarantined

    def test_reset_returns_to_bottom_rung(self):
        ladder = RecoveryLadder(retries_per_step=1, jitter=0, seed=1)
        for interval in (0, 10, 20):
            ladder.next_action(interval)
        assert ladder.current_step is not RecoveryStep.RESYNC
        ladder.reset(21)
        assert ladder.current_step is RecoveryStep.RESYNC
        assert ladder.next_action(21).backoff == 1  # backoff re-zeroed


class TestLaneWire:
    def test_clean_wire_is_transparent(self):
        wire = LaneWire("w", seed=1)
        assert wire.transmit(b"hello", 0) == b"hello"

    def test_cut_drops_everything_for_the_span(self):
        wire = LaneWire("w", seed=1)
        wire.cut(5, duration=2)
        assert wire.transmit(b"abc", 5) == b""
        assert wire.transmit(b"def", 6) == b""
        assert wire.transmit(b"ghi", 7) == b"ghi"
        assert wire.octets_dropped == 6

    def test_storm_defers_and_then_delivers_intact(self):
        wire = LaneWire("w", seed=1)
        wire.storm(3, duration=2)
        assert wire.transmit(b"abc", 3) == b""
        assert wire.transmit(b"def", 4) == b""
        assert wire.transmit(b"ghi", 5) == b"abcdefghi"
        assert wire.octets_deferred_peak == 6
        assert wire.octets_dropped == 0

    def test_cut_during_storm_loses_the_backlog(self):
        wire = LaneWire("w", seed=1)
        wire.storm(0, duration=1)
        wire.transmit(b"abcd", 0)
        wire.cut(1, duration=1)
        assert wire.transmit(b"ef", 1) == b""
        assert wire.octets_dropped == 6

    def test_burst_flips_bits_within_crc_bound(self):
        wire = LaneWire("w", seed=7)
        wire.arm_burst(8)
        data = bytes(64)
        out = wire.transmit(data, 0)
        assert out != data
        assert len(out) == len(data)
        assert 1 <= wire.line.stats.bits_flipped <= 8
        # One-shot: the next batch is clean again.
        assert wire.transmit(data, 1) == data

    def test_burst_size_is_validated(self):
        wire = LaneWire("w", seed=1)
        with pytest.raises(ValueError):
            wire.arm_burst(0)
        with pytest.raises(ValueError):
            wire.arm_burst(33)

    def test_flush_drops_the_backlog(self):
        wire = LaneWire("w", seed=1)
        wire.storm(0, duration=5)
        wire.transmit(b"abcd", 0)
        assert wire.flush() == 4
        wire2_out = wire.transmit(b"xy", 6)
        assert wire2_out == b"xy"


class TestChaosSchedule:
    def test_deterministic_from_seed(self):
        kwargs = dict(intervals=300, events=12, seed=42)
        assert chaos_schedule(**kwargs) == chaos_schedule(**kwargs)
        assert chaos_schedule(**kwargs) != chaos_schedule(
            intervals=300, events=12, seed=43
        )

    def test_mandatory_working_cut_and_sabotage(self):
        schedule = chaos_schedule(intervals=300, events=10, seed=1,
                                  hold_off=2, wait_to_restore=6)
        cuts = [e for e in schedule
                if e.kind == "cut" and e.lane == WORKING]
        assert cuts and any(c.duration > 2 for c in cuts)
        assert any(e.kind == "sabotage" for e in schedule)

    def test_cut_guard_windows_never_overlap(self):
        schedule = chaos_schedule(intervals=960, events=30, seed=5,
                                  hold_off=2, wait_to_restore=6)
        guard = 6 + 2
        cuts = sorted(
            (e for e in schedule if e.kind == "cut"),
            key=lambda e: e.interval,
        )
        for a, b in zip(cuts, cuts[1:]):
            assert b.interval - guard > a.end + guard

    def test_warmup_and_tail_reserve_are_event_free(self):
        schedule = chaos_schedule(intervals=300, events=10, seed=3,
                                  hold_off=2, wait_to_restore=6)
        reserve = 6 + 2 + 8
        for event in schedule:
            assert event.interval >= 6
            assert event.end < 300 - reserve

    def test_too_short_soak_is_rejected(self):
        with pytest.raises(ValueError):
            chaos_schedule(intervals=40, events=5, seed=1)
        with pytest.raises(ValueError):
            chaos_schedule(intervals=300, events=1, seed=1)


class TestDualLaneTopology:
    def test_registered_with_lint_and_clean(self):
        from repro.lint.graph import lint_topology
        from repro.lint.targets import shipped_topologies

        triples = {name: (mods, chans)
                   for name, mods, chans in shipped_topologies()}
        assert "resilience-dual-lane" in triples
        modules, channels = triples["resilience-dual-lane"]
        # Two full lanes: strictly more hardware than one fault harness.
        assert len(list(modules)) > len(list(triples["fault-harness"][0]))
        assert lint_topology(modules, channels) == []

    def test_sta_canonical_findings_stay_clean(self):
        from repro.sta.targets import canonical_findings

        assert canonical_findings() == []


class TestEventLog:
    def test_record_select_and_render(self):
        log = EventLog()
        log.record(3, "aps", "working", "switch", reason="test")
        log.record(4, "chaos", "protect", "cut", duration=2)
        assert len(log) == 2
        assert log.select(category="aps")[0].kind == "switch"
        assert log.select(lane="protect", kind="cut")
        assert not log.select(category="aps", kind="cut")
        assert "switch" in log.events[0].render()
        assert log.as_dicts()[1]["detail"] == {"duration": 2}
