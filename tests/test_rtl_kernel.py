"""Unit tests for the RTL simulation kernel."""

import pytest

from repro.errors import BackpressureOverflow, SimulationError
from repro.rtl import (
    Channel,
    Module,
    Simulator,
    StallPattern,
    StreamSink,
    StreamSource,
    SyncFifo,
    TraceRecorder,
    WordBeat,
    beats_from_bytes,
    bytes_from_beats,
)


class TestChannel:
    def test_handshake_flags(self):
        ch = Channel("c", capacity=1)
        assert ch.can_push and not ch.can_pop
        ch.push("x")
        assert not ch.can_push and ch.can_pop

    def test_fifo_order(self):
        ch = Channel("c", capacity=3)
        for item in "abc":
            ch.push(item)
        assert [ch.pop() for _ in range(3)] == list("abc")

    def test_overflow_raises(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        with pytest.raises(BackpressureOverflow):
            ch.push(2)

    def test_underflow_raises(self):
        with pytest.raises(BackpressureOverflow):
            Channel("c").pop()

    def test_peek_nondestructive(self):
        ch = Channel("c")
        ch.push(42)
        assert ch.peek() == 42 and ch.can_pop

    def test_occupancy_stats(self):
        ch = Channel("c", capacity=4)
        ch.push(1); ch.push(2); ch.pop(); ch.push(3)
        assert ch.max_occupancy == 2
        assert ch.pushes == 3 and ch.pops == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Channel("c", capacity=0)


class TestWordBeat:
    def test_from_bytes_left_aligned(self):
        beat = WordBeat.from_bytes(b"\x01\x02", 4)
        assert beat.lanes == (1, 2, 0, 0)
        assert beat.valid == (True, True, False, False)
        assert beat.n_valid == 2

    def test_payload_skips_invalid(self):
        beat = WordBeat((1, 2, 0, 4), (True, False, False, True))
        assert beat.payload() == b"\x01\x04"

    def test_render(self):
        beat = WordBeat.from_bytes(b"\x7e\x12", 4, sof=True)
        assert beat.render() == "7E 12 -- -- [S]"

    def test_validation(self):
        with pytest.raises(ValueError):
            WordBeat((1, 2), (True,))
        with pytest.raises(ValueError):
            WordBeat((300,), (True,))
        with pytest.raises(ValueError):
            WordBeat.from_bytes(b"", 4)
        with pytest.raises(ValueError):
            WordBeat.from_bytes(b"12345", 4)

    def test_beats_round_trip(self, rng):
        data = rng.integers(0, 256, 123, dtype="uint8").tobytes()
        beats = beats_from_bytes(data, 4)
        assert bytes_from_beats(beats) == data
        assert beats[0].sof and beats[-1].eof
        assert not beats[1].sof and not beats[0].eof

    def test_empty_beats(self):
        assert beats_from_bytes(b"", 4) == []


class TestStallPattern:
    def test_never(self):
        stall = StallPattern.never()
        assert not any(stall.active(c) for c in range(100))

    def test_every(self):
        stall = StallPattern(every=3)
        hits = [c for c in range(9) if stall.active(c)]
        assert hits == [2, 5, 8]

    def test_probability_deterministic_with_seed(self):
        a = StallPattern(probability=0.5, seed=1)
        b = StallPattern(probability=0.5, seed=1)
        assert [a.active(c) for c in range(50)] == [b.active(c) for c in range(50)]

    def test_burst(self):
        stall = StallPattern(every=5, burst=3)
        states = [stall.active(c) for c in range(10)]
        assert states[4] and states[5] and states[6]

    def test_validation(self):
        with pytest.raises(ValueError):
            StallPattern(every=0)
        with pytest.raises(ValueError):
            StallPattern(probability=1.5)


class TestSimulator:
    def _pipeline(self, data, *, src_stall=None, sink_stall=None, depth=2):
        c1, c2 = Channel("c1"), Channel("c2")
        src = StreamSource("src", c1, beats_from_bytes(data, 2), stall=src_stall)
        fifo = SyncFifo("fifo", c1, c2, depth=depth)
        sink = StreamSink("sink", c2, stall=sink_stall)
        sim = Simulator([src, fifo, sink], [c1, c2])
        return sim, src, fifo, sink

    def test_pipeline_moves_data(self, rng):
        data = rng.integers(0, 256, 64, dtype="uint8").tobytes()
        sim, src, fifo, sink = self._pipeline(data)
        sim.run_until(lambda: len(sink.data()) == len(data))
        assert sink.data() == data

    def test_unstalled_pipeline_is_full_rate(self):
        data = bytes(range(100))
        sim, src, fifo, sink = self._pipeline(data)
        sim.run_until(lambda: len(sink.data()) == len(data))
        # 50 beats through a 2-register pipeline: 50 + small fill time.
        assert sim.cycle <= 50 + 4

    def test_slow_sink_backpressures_source(self):
        data = bytes(range(100))
        sim, src, fifo, sink = self._pipeline(
            data, sink_stall=StallPattern(every=2)
        )
        sim.run_until(lambda: len(sink.data()) == len(data), timeout=500)
        assert src.stalled_cycles > 0
        assert sink.data() == data

    def test_random_stalls_preserve_data(self, rng):
        data = rng.integers(0, 256, 200, dtype="uint8").tobytes()
        sim, src, fifo, sink = self._pipeline(
            data,
            src_stall=StallPattern(probability=0.3, seed=7),
            sink_stall=StallPattern(probability=0.3, seed=8),
        )
        sim.run_until(lambda: len(sink.data()) == len(data), timeout=5000)
        assert sink.data() == data

    def test_run_until_timeout(self):
        sim, *_ = self._pipeline(b"ab")
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, timeout=10)

    def test_drain(self):
        data = bytes(range(20))
        sim, src, fifo, sink = self._pipeline(data)
        sim.drain()
        assert sink.data() == data

    def test_requires_modules(self):
        with pytest.raises(ValueError):
            Simulator([])

    def test_observer_called_every_cycle(self):
        sim, *_ = self._pipeline(b"abcd")
        seen = []
        sim.add_observer(seen.append)
        sim.step(5)
        assert seen == [1, 2, 3, 4, 5]


class TestSyncFifo:
    def test_occupancy_high_water(self):
        c1, c2 = Channel("c1"), Channel("c2")
        src = StreamSource("src", c1, beats_from_bytes(bytes(40), 2))
        fifo = SyncFifo("fifo", c1, c2, depth=5)
        sink = StreamSink("sink", c2, stall=StallPattern(every=2))
        sim = Simulator([src, fifo, sink], [c1, c2])
        sim.run_until(lambda: len(sink.beats) == 20, timeout=500)
        assert 1 <= fifo.max_occupancy <= 5


class TestTraceRecorder:
    def test_renders_table(self):
        c1, c2 = Channel("stage1"), Channel("stage2")
        src = StreamSource("src", c1, beats_from_bytes(b"\x7e\x12\x34\x56", 4))
        fifo = SyncFifo("fifo", c1, c2, depth=2)
        sink = StreamSink("sink", c2)
        sim = Simulator([src, fifo, sink], [c1, c2])
        recorder = TraceRecorder([c1, c2])
        sim.add_observer(recorder.sample)
        sim.step(6)
        text = recorder.render()
        assert "stage1" in text and "7E 12 34 56" in text

    def test_skip_idle_rows(self):
        ch = Channel("quiet")
        recorder = TraceRecorder([ch])
        for cycle in range(5):
            recorder.sample(cycle)
        assert recorder.render().count("\n") == 1  # header + rule only
