"""Kernel speedups must not change observable behaviour.

Covers the simulator-side optimisations that ride with the fastpath
engine: batched ``step(cycles=N)``, the cached clock order / watched
channel list with explicit invalidation, quiescence skipping, the
``Channel`` instrumentation taps that replaced method monkeypatching,
and the vectorised ``stuffed_length``.
"""

import pytest

from repro.core.config import P5Config
from repro.core.p5 import P5System, PhyWire
from repro.hdlc import Accm
from repro.hdlc.byte_stuffing import _VECTOR_THRESHOLD, stuffed_length
from repro.rtl.module import Channel, Module
from repro.rtl.pipeline import StallPattern, StreamSink, StreamSource
from repro.rtl.simulator import Simulator
from repro.utils.rng import make_rng
from repro.workloads.packets import ppp_frame_contents


def _loopback(config=None):
    system = P5System(config or P5Config(), name="k")
    wire = PhyWire("k.wire", system.tx.phy_out, system.rx.phy_in)
    sim = Simulator(
        system.tx.modules + [wire] + system.rx.modules, system.channels
    )
    return system, sim


def test_batched_step_equals_repeated_single_steps():
    contents = ppp_frame_contents(5, seed=9)
    system_a, sim_a = _loopback()
    system_b, sim_b = _loopback()
    for content in contents:
        system_a.submit(content)
        system_b.submit(content)
    for _ in range(400):
        sim_a.step()
    sim_b.step(cycles=400)
    assert sim_a.cycle == sim_b.cycle == 400
    assert system_a.received() == system_b.received()
    assert system_a.oam.regs.dump() == system_b.oam.regs.dump()


def test_zero_cycle_step_is_a_no_op():
    _system, sim = _loopback()
    sim.step(cycles=0)
    assert sim.cycle == 0


def test_observers_fire_once_per_cycle_in_batched_steps():
    _system, sim = _loopback()
    seen = []
    sim.add_observer(seen.append)
    sim.step(cycles=7)
    assert seen == list(range(1, 8))


def test_add_module_after_stepping_is_clocked():
    class Counter(Module):
        def __init__(self):
            super().__init__("late.counter")
            self.ticks = 0

        def clock(self):
            self.ticks += 1

    _system, sim = _loopback()
    sim.step(cycles=3)
    late = Counter()
    sim.add_module(late)
    sim.step(cycles=5)
    assert late.ticks == 5


def test_quiescent_modules_still_age():
    """Skipped clocks must keep ``module.cycles`` advancing so stall
    schedules derived from it stay aligned with the unskipped run."""
    _system, sim = _loopback()
    sim.step(cycles=50)  # nothing submitted: the whole system is idle
    assert all(m.cycles == 50 for m in sim.modules)


def test_quiescence_does_not_change_delivery_with_stalls():
    from repro.rtl.pipeline import beats_from_bytes

    payload = bytes(make_rng(4).integers(0, 256, size=96, dtype="uint8"))
    results = []
    for _ in range(2):
        c_in = Channel("q.in", capacity=2)
        source = StreamSource(
            "q.src",
            c_in,
            beats_from_bytes(payload, 4),
            stall=StallPattern(probability=0.3, seed=11),
        )
        sink = StreamSink(
            "q.snk", c_in, stall=StallPattern(every=3)
        )
        sim = Simulator([source, sink], [c_in])
        sim.run_until(lambda: source.done and not c_in.can_pop, timeout=5_000)
        sim.drain(idle_cycles=8, timeout=5_000)
        results.append((sim.cycle, sink.data()))
    assert results[0] == results[1]
    assert results[0][1] == payload


def test_stall_pattern_is_never():
    assert StallPattern.never().is_never
    assert not StallPattern(every=4).is_never
    assert not StallPattern(probability=0.1, seed=1).is_never
    burst = StallPattern(every=2, burst=3)
    assert not burst.is_never


def test_channel_taps_fire_on_push_and_pop():
    channel = Channel("tap.ch", capacity=2)
    events = []
    channel.on_push = lambda item: events.append(("push", item))
    channel.on_pop = lambda item: events.append(("pop", item))
    channel.push("a")
    channel.push("b")
    assert channel.pop() == "a"
    assert events == [("push", "a"), ("push", "b"), ("pop", "a")]


def test_channel_slots_forbid_monkeypatching():
    channel = Channel("slots.ch", capacity=1)
    with pytest.raises(AttributeError):
        channel.extra_attribute = 1


def test_stuffed_length_vector_matches_scalar():
    rng = make_rng(7)
    accm = Accm.from_octets([0x11, 0x13])
    for size in (0, 1, _VECTOR_THRESHOLD - 1, _VECTOR_THRESHOLD, 4096):
        data = bytes(rng.integers(0, 256, size=size, dtype="uint8"))
        escapes = {0x7E, 0x7D, 0x11, 0x13}
        expected = len(data) + sum(1 for b in data if b in escapes)
        assert stuffed_length(data, accm) == expected
    allflags = b"\x7e" * 500
    assert stuffed_length(allflags) == 1000
