"""Abort, runt and oversize frames through the cycle-accurate RX path.

Every scenario drives raw wire octets into a full ``P5Receiver``
(delineator → escape detect → CRC → sink) and checks that the error
is counted, typed, and — most importantly — that the *next* frame on
the wire is received intact: the hardening is about recovery, not
just rejection.
"""

import pytest

from repro.core.config import P5Config
from repro.core.rx import P5Receiver
from repro.errors import (
    AbortError,
    ConfigError,
    FcsError,
    OversizeFrameError,
    RuntFrameError,
)
from repro.hdlc import HdlcFramer
from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.rtl import Simulator, StreamSource, beats_from_bytes

FLAG = bytes([FLAG_OCTET])
ESC = bytes([ESC_OCTET])


def run_rx(wire, config):
    rx = P5Receiver(config)
    src = StreamSource(
        "phy_src", rx.phy_in,
        beats_from_bytes(wire, config.width_bytes, frame_marks=False),
    )
    sim = Simulator([src] + rx.modules, rx.channels)
    sim.run_until(
        lambda: src.done
        and not any(ch.can_pop for ch in rx.channels)
        and rx.escape.idle,
        timeout=200_000,
        watchdog=4096,
    )
    return rx


def good_wire(config, content):
    return HdlcFramer(config.fcs).encode(content)


class TestAbort:
    @pytest.mark.parametrize("width", [8, 32], ids=["8bit", "32bit"])
    def test_short_abort_discarded_silently(self, width, rng):
        """<ESC><FLAG> before anything shipped: clean discard.

        The aborted body must fit the delineator's one-word holdback
        (so nothing has gone downstream yet): at most W-1 octets
        before the escape.
        """
        config = P5Config(width_bits=width)
        follower = rng.integers(0, 256, 40, dtype="uint8").tobytes()
        body = b"\x41" * (config.width_bytes - 1)
        wire = FLAG + body + ESC + FLAG + good_wire(config, follower)
        rx = run_rx(wire, config)
        assert rx.delineator.aborts == 1
        assert rx.good_frames() == [follower]
        assert rx.delineator.frames_delineated == 1  # only the follower
        assert any(isinstance(f, AbortError) for f in rx.faults)

    @pytest.mark.parametrize("width", [8, 32], ids=["8bit", "32bit"])
    def test_long_abort_cannot_merge_frames(self, width, rng):
        """An abort after beats shipped must close the partial frame."""
        config = P5Config(width_bits=width)
        partial = rng.integers(1, 0x7D, 40, dtype="uint8").tobytes()
        follower = rng.integers(0, 256, 40, dtype="uint8").tobytes()
        wire = FLAG + partial + ESC + FLAG + good_wire(config, follower)
        rx = run_rx(wire, config)
        assert rx.delineator.aborts == 1
        # The aborted fragment must not swallow the follower.
        assert rx.good_frames() == [follower]
        # It surfaced somewhere as an error, never as a good frame.
        errors = (
            rx.crc.fcs_errors + rx.crc.runt_frames
            + rx.escape.dangling_escape_errors
        )
        assert errors >= 1

    def test_abort_faults_carry_context(self):
        config = P5Config.thirty_two_bit()
        wire = FLAG + b"\x10\x20\x30" + ESC + FLAG
        rx = run_rx(wire, config)
        (fault,) = [f for f in rx.faults if isinstance(f, AbortError)]
        assert "abort" in str(fault)


class TestRunt:
    @pytest.mark.parametrize("width", [8, 32], ids=["8bit", "32bit"])
    def test_runt_swallowed_and_counted(self, width, rng):
        config = P5Config(width_bits=width)
        follower = rng.integers(0, 256, 40, dtype="uint8").tobytes()
        wire = FLAG + b"\x41\x42" + FLAG + good_wire(config, follower)
        rx = run_rx(wire, config)
        assert rx.crc.runt_frames == 1
        assert rx.good_frames() == [follower]
        # Runts never reach receive memory.
        assert len(rx.frames) == 1
        assert any(isinstance(f, RuntFrameError) for f in rx.faults)

    def test_empty_body_is_idle_not_runt(self):
        """Back-to-back flags are inter-frame idle, not an error."""
        config = P5Config.thirty_two_bit()
        wire = FLAG + FLAG + FLAG
        rx = run_rx(wire, config)
        assert rx.crc.runt_frames == 0
        assert rx.delineator.empty_bodies >= 1
        assert rx.faults == []


class TestOversize:
    def test_oversize_cut_and_rehunt(self, rng):
        config = P5Config.thirty_two_bit(max_frame_octets=64)
        big = rng.integers(0, 256, 120, dtype="uint8").tobytes()
        follower = rng.integers(0, 256, 40, dtype="uint8").tobytes()
        wire = good_wire(config, big) + good_wire(config, follower)
        rx = run_rx(wire, config)
        assert rx.delineator.oversize_drops == 1
        assert rx.good_frames() == [follower]
        assert any(isinstance(f, OversizeFrameError) for f in rx.faults)
        # The cut tail was discarded during the re-hunt.
        assert rx.delineator.octets_discarded_hunting > 0

    def test_unbounded_by_default(self, rng):
        config = P5Config.thirty_two_bit()
        big = rng.integers(0, 256, 600, dtype="uint8").tobytes()
        rx = run_rx(good_wire(config, big), config)
        assert rx.delineator.oversize_drops == 0
        assert rx.good_frames() == [big]

    def test_bound_below_four_words_rejected(self):
        with pytest.raises(ConfigError):
            P5Config.thirty_two_bit(max_frame_octets=8)

    def test_generous_bound_passes_normal_traffic(self, rng):
        config = P5Config.thirty_two_bit(max_frame_octets=512)
        frames = [rng.integers(0, 256, n, dtype="uint8").tobytes()
                  for n in (24, 72, 128)]
        wire = b"".join(good_wire(config, f) for f in frames)
        rx = run_rx(wire, config)
        assert rx.good_frames() == frames
        assert rx.delineator.oversize_drops == 0


class TestFcsFaultRecords:
    def test_corrupt_frame_yields_typed_fcs_error(self, rng):
        config = P5Config.thirty_two_bit()
        content = rng.integers(0, 256, 40, dtype="uint8").tobytes()
        wire = bytearray(good_wire(config, content))
        # Flip one payload bit on a non-framing octet.
        for i in range(2, len(wire) - 2):
            if wire[i] not in (FLAG_OCTET, ESC_OCTET) and \
                    wire[i - 1] != ESC_OCTET:
                wire[i] ^= 0x04
                break
        rx = run_rx(bytes(wire), config)
        assert rx.crc.fcs_errors == 1
        (fault,) = [f for f in rx.faults if isinstance(f, FcsError)]
        assert fault.expected == config.fcs.residue
