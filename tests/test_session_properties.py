"""Property-based robustness tests for the PPP session layer.

The endpoint must never crash or violate its phase invariants under
arbitrary interleavings of administrative events, timer ticks, wire
exchanges and garbage injection.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ppp import IpcpConfig, LcpConfig, LinkPhase, PppEndpoint
from repro.ppp.fsm import State
from repro.ppp.ipcp import parse_ipv4

OPS = ("open", "close", "up", "down", "tick", "exchange", "garbage", "datagram")


def make_pair(seed_a=1, seed_b=2):
    a = PppEndpoint(
        "A",
        LcpConfig(),
        IpcpConfig(local_address=parse_ipv4("10.0.0.1"),
                   assign_peer=parse_ipv4("10.0.0.2")),
        magic_seed=seed_a,
    )
    b = PppEndpoint("B", LcpConfig(), IpcpConfig(local_address=0),
                    magic_seed=seed_b)
    return a, b


def apply_op(op, a, b, garbage):
    if op == "open":
        a.open()
    elif op == "close":
        a.close()
    elif op == "up":
        a.lower_up() if a.lcp.state is State.INITIAL or a.lcp.state is State.STARTING else None
    elif op == "down":
        if a.lcp.state not in (State.INITIAL, State.STARTING):
            a.lower_down()
    elif op == "tick":
        a.tick()
        b.tick()
    elif op == "exchange":
        b.receive_wire(a.pump())
        a.receive_wire(b.pump())
    elif op == "garbage":
        a.receive_wire(garbage)
    elif op == "datagram":
        a.send_datagram(b"probe")


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=40),
    garbage=st.binary(max_size=60),
)
def test_endpoint_never_crashes(ops, garbage):
    """Any op sequence: no exception, and invariants hold throughout."""
    a, b = make_pair()
    b.open()
    b.lower_up()
    for op in ops:
        apply_op(op, a, b, garbage)
        # Invariant: phase is consistent with the LCP state.
        if a.lcp.state is State.OPENED:
            assert a.phase in (LinkPhase.NETWORK, LinkPhase.AUTHENTICATE)
        if a.phase is LinkPhase.DEAD:
            assert not a.network_ready()
        # Invariant: datagrams never flow while not network-ready.
        if not a.network_ready():
            assert not a.send_datagram(b"x")


@settings(max_examples=30, deadline=None)
@given(
    prefix=st.lists(st.sampled_from(("tick", "garbage", "exchange")), max_size=10),
    garbage=st.binary(max_size=40),
)
def test_link_always_recoverable(prefix, garbage):
    """After arbitrary noise, a clean bring-up still converges."""
    from repro.ppp import connect_endpoints

    a, b = make_pair(seed_a=7, seed_b=8)
    a.open(); a.lower_up()
    b.open(); b.lower_up()
    for op in prefix:
        apply_op(op, a, b, garbage)
    rounds = connect_endpoints(a, b, bring_up=False, max_rounds=40)
    assert a.network_ready() and b.network_ready()
    assert rounds <= 40


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=1, max_size=120))
def test_arbitrary_wire_bytes_never_crash(data):
    """Random line noise into a live endpoint: counted, never fatal."""
    a, _ = make_pair()
    a.open()
    a.lower_up()
    a.receive_wire(data)
    a.receive_wire(bytes([0x7E]) + data + bytes([0x7E]))
    stats = a.delineator.stats
    assert stats.octets_in >= len(data)
