"""The cycle-budget stall watchdog in the simulation kernel."""

import pytest

from repro.errors import PipelineStallError, SimulationError
from repro.rtl.module import Channel, Module
from repro.rtl.pipeline import StreamSink, StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator


class NeverReady(Module):
    """A sink that deasserts ready forever — the canonical wedge."""

    def __init__(self, name, inp):
        super().__init__(name)
        self.inp = self.reads(inp)

    def clock(self):
        if not self.inp.can_pop:
            return
        self.note_stall()


def wedged_pipeline():
    ch = Channel("wedge.ch", capacity=2)
    source = StreamSource("src", ch, beats_from_bytes(bytes(range(64)), 4))
    sink = NeverReady("sink", ch)
    return source, sink, Simulator([source, sink], [ch])


class TestWatchdog:
    def test_wedged_pipeline_trips_watchdog(self):
        source, _sink, sim = wedged_pipeline()
        with pytest.raises(PipelineStallError):
            sim.run_until(lambda: source.done, watchdog=50)

    def test_stall_error_is_a_simulation_error(self):
        _, _, sim = wedged_pipeline()
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, watchdog=50, timeout=10_000)

    def test_diagnostic_names_modules_and_channels(self):
        source, sink, sim = wedged_pipeline()
        with pytest.raises(PipelineStallError) as excinfo:
            sim.run_until(lambda: source.done, watchdog=50)
        diag = excinfo.value.diagnostic
        assert diag["quiet_cycles"] >= 50
        names = {m["name"] for m in diag["modules"]}
        assert names == {"src", "sink"}
        (ch,) = [c for c in diag["channels"] if c["name"] == "wedge.ch"]
        assert ch["occupancy"] == ch["capacity"] == 2
        by_name = {m["name"]: m for m in diag["modules"]}
        assert by_name["sink"]["stalled_cycles"] > 0

    def test_message_mentions_occupied_channel(self):
        source, _sink, sim = wedged_pipeline()
        with pytest.raises(PipelineStallError, match="wedge.ch=2/2"):
            sim.run_until(lambda: source.done, watchdog=50)

    def test_watchdog_observes_undeclared_channels(self):
        """Forgetting the channel list must not blind the watchdog."""
        ch = Channel("hidden", capacity=2)
        source = StreamSource("src", ch, beats_from_bytes(bytes(16), 4))
        sink = NeverReady("sink", ch)
        sim = Simulator([source, sink])  # no channels declared
        with pytest.raises(PipelineStallError):
            sim.run_until(lambda: source.done, watchdog=50)

    def test_healthy_pipeline_does_not_trip(self):
        ch = Channel("ok.ch", capacity=2)
        source = StreamSource("src", ch, beats_from_bytes(bytes(range(64)), 4))
        sink = StreamSink("sink", ch)
        sim = Simulator([source, sink], [ch], watchdog=8)
        sim.run_until(lambda: source.done and not ch.can_pop, timeout=1_000)
        assert sink.data() == bytes(range(64))

    def test_constructor_default_applies_to_runs(self):
        source, _sink, sim = wedged_pipeline()
        sim.watchdog = 40
        with pytest.raises(PipelineStallError):
            sim.run_until(lambda: source.done, timeout=10_000)

    def test_per_call_override_beats_constructor(self):
        """A generous per-call budget outlives a tight constructor one."""
        ch = Channel("slow.ch", capacity=2)
        source = StreamSource("src", ch, beats_from_bytes(bytes(8), 4))
        sink = StreamSink("sink", ch)
        sim = Simulator([source, sink], [ch], watchdog=1_000)
        cycles = sim.run_until(
            lambda: source.done and not ch.can_pop, watchdog=5_000, timeout=10_000
        )
        assert cycles > 0

    def test_drain_supports_watchdog(self):
        _source, _sink, sim = wedged_pipeline()
        sim.step(10)  # fill the channel so drain has work it cannot do
        with pytest.raises(PipelineStallError):
            sim.drain(watchdog=50)

    def test_no_watchdog_means_timeout_semantics(self):
        source, _sink, sim = wedged_pipeline()
        with pytest.raises(SimulationError) as excinfo:
            sim.run_until(lambda: source.done, timeout=200)
        assert not isinstance(excinfo.value, PipelineStallError)


class Idle(Module):
    """A module wired to no channels at all."""

    def clock(self):
        pass


class TestWatchdogEdges:
    """Boundary behaviour of the watchdog and drain machinery."""

    def test_zero_wired_channels_drain_completes(self):
        sim = Simulator([Idle("idle")])
        assert sim.drain(idle_cycles=3) == 3
        assert sim.stall_diagnostic(0)["channels"] == []

    def test_zero_wired_channels_still_trip_a_silence_watchdog(self):
        """With nothing to ever move, the budget counts from cycle 0."""
        sim = Simulator([Idle("idle")])
        with pytest.raises(PipelineStallError, match="occupied channels: none"):
            sim.run_until(lambda: False, watchdog=5, timeout=100)

    def test_observer_exception_propagates_after_cycle_advance(self):
        sim = Simulator([Idle("idle")])

        def explode(cycle):
            if cycle == 3:
                raise RuntimeError("observer boom")

        sim.add_observer(explode)
        sim.step(2)
        with pytest.raises(RuntimeError, match="observer boom"):
            sim.step()
        # The cycle had already been committed before observers ran.
        assert sim.cycle == 3

    def test_quiet_budget_reports_exactly_the_budget(self):
        """The stall fires the first cycle the budget is met, not later."""
        source, _sink, sim = wedged_pipeline()
        with pytest.raises(PipelineStallError) as excinfo:
            sim.run_until(lambda: source.done, watchdog=37)
        assert excinfo.value.diagnostic["quiet_cycles"] == 37

    def _quiet_drain_sim(self):
        ch = Channel("quiet.ch", capacity=2)
        source = StreamSource("src", ch, [])      # nothing to send
        sink = StreamSink("sink", ch)
        return Simulator([source, sink], [ch])

    def test_drain_budget_at_the_boundary_completes(self):
        # idle_cycles checks happen at quiet counts 0..idle_cycles-1,
        # so a budget equal to idle_cycles never fires.
        assert self._quiet_drain_sim().drain(idle_cycles=4, watchdog=4) == 4

    def test_drain_budget_below_the_boundary_trips(self):
        with pytest.raises(PipelineStallError):
            self._quiet_drain_sim().drain(idle_cycles=4, watchdog=3)
