"""Soak test: a long duplex run with cross-checked global accounting.

One sustained exchange, then every conservation law the system implies
is asserted across *both* stations' OAM counters — the kind of
consistency audit a hardware bring-up lab runs overnight.
"""

import pytest

from repro.core import P5Config, run_duplex_exchange
from repro.hdlc import stuff
from repro.workloads import ppp_frame_contents


@pytest.fixture(scope="module")
def soak_result():
    frames_ab = ppp_frame_contents(40, seed=101)
    frames_ba = ppp_frame_contents(40, seed=202)
    result = run_duplex_exchange(
        frames_ab, frames_ba, P5Config.thirty_two_bit(), timeout=2_000_000
    )
    return result, frames_ab, frames_ba


class TestConservationLaws:
    def test_every_frame_delivered_exactly_once(self, soak_result):
        result, frames_ab, frames_ba = soak_result
        assert [c for c, _ in result.b_received] == frames_ab
        assert [c for c, _ in result.a_received] == frames_ba

    def test_tx_equals_rx_frame_counts(self, soak_result):
        result, frames_ab, frames_ba = soak_result
        assert result.a.tx.flags.frames_wrapped == len(frames_ab)
        assert result.b.rx.crc.frames_ok == len(frames_ab)
        assert result.b.rx.delineator.frames_delineated == len(frames_ab)

    def test_escapes_inserted_equals_deleted(self, soak_result):
        result, *_ = soak_result
        assert (
            result.a.tx.escape.octets_escaped
            == result.b.rx.escape.octets_deleted
        )
        assert (
            result.b.tx.escape.octets_escaped
            == result.a.rx.escape.octets_deleted
        )

    def test_escape_count_matches_software_model(self, soak_result):
        result, frames_ab, _ = soak_result
        fcs = result.a.tx.config.fcs
        from repro.crc import TableCrc

        expected = 0
        for content in frames_ab:
            trailer = TableCrc(fcs).compute(content).to_bytes(4, "little")
            expected += len(stuff(content + trailer)) - len(content) - 4
        assert result.a.tx.escape.octets_escaped == expected

    def test_wire_byte_conservation(self, soak_result):
        """Wire bytes = content + FCS + escapes + 2 flags per frame."""
        result, frames_ab, _ = soak_result
        tx = result.a.tx
        content_bytes = sum(len(f) for f in frames_ab)
        fcs_bytes = 4 * len(frames_ab)
        expected_wire = (
            content_bytes + fcs_bytes + tx.escape.octets_escaped
            + tx.flags.flags_inserted
        )
        assert tx.escape.bytes_out == content_bytes + fcs_bytes + tx.escape.octets_escaped
        assert tx.flags.flags_inserted == 2 * len(frames_ab)
        # The receiver's hunt discarded nothing on a clean link.
        assert result.b.rx.delineator.octets_discarded_hunting == 0
        assert expected_wire == tx.escape.bytes_out + tx.flags.flags_inserted

    def test_no_errors_anywhere(self, soak_result):
        result, *_ = soak_result
        for system in (result.a, result.b):
            assert system.rx.crc.fcs_errors == 0
            assert system.rx.crc.runt_frames == 0
            assert system.rx.escape.dangling_escape_errors == 0

    def test_resync_bounded_all_run(self, soak_result):
        result, *_ = soak_result
        for system in (result.a, result.b):
            assert system.tx.escape.max_resync_occupancy <= 3
            assert system.rx.escape.max_resync_occupancy <= 3

    def test_oam_matches_module_counters(self, soak_result):
        result, frames_ab, _ = soak_result
        oam = result.a.oam
        assert oam.regs.read_name("TX_FRAMES") == len(frames_ab)
        assert oam.regs.read_name("ESC_INSERTED") == result.a.tx.escape.octets_escaped


class TestThroughputEnvelope:
    def test_cycles_within_theoretical_envelope(self, soak_result):
        """Total cycles is bounded below by wire bytes / W and above by
        a small multiple (pipeline fills + frame boundaries)."""
        result, frames_ab, frames_ba = soak_result
        tx = result.a.tx
        wire_bytes = tx.escape.bytes_out + tx.flags.flags_inserted
        floor = wire_bytes / 4
        assert result.cycles >= floor
        assert result.cycles <= 2.0 * floor + 500
