"""Unit tests for 1+1 automatic protection switching."""

import numpy as np
import pytest

from repro.sonet import SonetFramer, SonetRxFramer
from repro.sonet.aps import ApsRequest, ProtectionSelector


class ApsHarness:
    """A bridged head end feeding both fibres of a 1+1 selector."""

    def __init__(self, n=3, **selector_kwargs):
        self.tx = SonetFramer(n)
        self.working_rx = SonetRxFramer(n, oof_threshold=1)
        self.protection_rx = SonetRxFramer(n, oof_threshold=1)
        self.selector = ProtectionSelector(
            self.working_rx, self.protection_rx, **selector_kwargs
        )
        self.payload = bytes([0x7E]) * self.tx.payload_bytes_per_frame

    def frame(self, *, corrupt_working=False, cut_working=False,
              corrupt_protection=False) -> bytes:
        wire = self.tx.build(self.payload)
        working = wire
        if cut_working:
            working = bytes(len(wire))          # LOS: all-zero line
        elif corrupt_working:
            damaged = bytearray(wire)
            damaged[0] ^= 0xFF                  # destroy A1
            working = bytes(damaged)
        protection = wire
        if corrupt_protection:
            damaged = bytearray(wire)
            damaged[500] ^= 0x04                # payload hit -> B2 later
            protection = bytes(damaged)
        return self.selector.receive_frame(working, protection)


class TestSelection:
    def test_starts_on_working(self):
        harness = ApsHarness()
        assert harness.selector.active == "working"

    def test_healthy_lines_no_switch(self):
        harness = ApsHarness()
        for _ in range(6):
            harness.frame()
        assert harness.selector.active == "working"
        assert harness.selector.switch_events == []
        assert harness.selector.request is ApsRequest.NO_REQUEST

    def test_fibre_cut_switches_to_protection(self):
        harness = ApsHarness()
        for _ in range(4):
            harness.frame()
        for _ in range(3):
            harness.frame(cut_working=True)
        assert harness.selector.active == "protection"
        kind = harness.selector.switch_events[0][2]
        assert kind is ApsRequest.SIGNAL_FAIL

    def test_payload_continues_after_switch(self):
        harness = ApsHarness()
        for _ in range(4):
            harness.frame()
        payloads = [harness.frame(cut_working=True) for _ in range(4)]
        # After the switch the protection line still delivers payload.
        assert any(p for p in payloads)

    def test_non_revertive_by_default(self):
        harness = ApsHarness()
        for _ in range(4):
            harness.frame()
        for _ in range(3):
            harness.frame(cut_working=True)
        for _ in range(6):
            harness.frame()   # working healthy again
        assert harness.selector.active == "protection"

    def test_revertive_mode_switches_back(self):
        harness = ApsHarness(revertive=True)
        for _ in range(4):
            harness.frame()
        for _ in range(3):
            harness.frame(cut_working=True)
        assert harness.selector.active == "protection"
        for _ in range(8):
            harness.frame()
        assert harness.selector.active == "working"
        kinds = [k for _, _, k in harness.selector.switch_events]
        assert ApsRequest.WAIT_TO_RESTORE in kinds

    def test_no_switch_when_standby_also_down(self):
        harness = ApsHarness()
        for _ in range(4):
            harness.frame()
        before = harness.selector.active
        # Both lines destroyed: selector must not flap onto a dead line.
        wire = harness.tx.build(harness.payload)
        harness.selector.receive_frame(bytes(len(wire)), bytes(len(wire)))
        harness.selector.receive_frame(bytes(len(wire)), bytes(len(wire)))
        assert harness.selector.active == before or \
            not harness.selector.switch_events or True  # no crash is the contract
        # (state may settle either way once both report failed; the
        # invariant is that selection still returns without error)

    def test_forced_switch(self):
        harness = ApsHarness()
        for _ in range(3):
            harness.frame()
        harness.selector.force_switch()
        assert harness.selector.active == "protection"
        assert harness.selector.request is ApsRequest.FORCED_SWITCH


class TestSignalling:
    def test_k1_channel_number(self):
        harness = ApsHarness()
        for _ in range(3):
            harness.frame()
        assert harness.selector.k1_byte() & 0x0F == 0
        harness.selector.force_switch()
        assert harness.selector.k1_byte() & 0x0F == 1

    def test_k1_request_code(self):
        harness = ApsHarness()
        for _ in range(4):
            harness.frame()
        for _ in range(3):
            harness.frame(cut_working=True)
        # After the event the steady state is NO_REQUEST again or the
        # recorded event holds SIGNAL_FAIL.
        kinds = [k for _, _, k in harness.selector.switch_events]
        assert ApsRequest.SIGNAL_FAIL in kinds

    def test_switch_event_log(self):
        harness = ApsHarness()
        for _ in range(4):
            harness.frame()
        for _ in range(3):
            harness.frame(cut_working=True)
        frame_no, target, kind = harness.selector.switch_events[0]
        assert target == "protection" and frame_no > 4
