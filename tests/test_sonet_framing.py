"""Unit tests for SONET frame construction, alignment and monitoring."""

import numpy as np
import pytest

from repro.errors import PointerError, SonetError
from repro.sonet import (
    FramerState,
    SonetFramer,
    SonetRxFramer,
    payload_capacity_bytes,
    rate_for,
)
from repro.sonet.constants import A1, A2, ROWS, SONET_C2_PPP_SCRAMBLED
from repro.sonet.framer import SonetFrame, _bip8


class TestRates:
    def test_oc48_is_2_5_gbps(self):
        """The paper's target rate."""
        rate = rate_for(48)
        assert rate.line_rate_bps == pytest.approx(2.48832e9)
        assert rate.sdh_name == "STM-16"

    def test_oc3_oc12(self):
        assert rate_for(3).line_rate_bps == pytest.approx(155.52e6)
        assert rate_for(12).line_rate_bps == pytest.approx(622.08e6)

    def test_payload_capacity(self):
        # STS-3c: 2340 total, 9 TOH cols * 9 rows = 81... payload =
        # (270-9-1) * 9 = 2340 bytes SPE minus POH = 2340.
        assert payload_capacity_bytes(3) == (270 - 9 - 1) * 9

    def test_fixed_stuff_scaling(self):
        from repro.sonet.rates import fixed_stuff_columns

        assert fixed_stuff_columns(1) == 0
        assert fixed_stuff_columns(3) == 0
        assert fixed_stuff_columns(12) == 3
        assert fixed_stuff_columns(48) == 15

    def test_names(self):
        assert rate_for(1).name == "STS-1"
        assert rate_for(3).name == "STS-3c"
        assert rate_for(48).oc_name == "OC-48"


def make_payload(framer: SonetFramer, fill: int = 0x7E) -> bytes:
    return bytes([fill]) * framer.payload_bytes_per_frame


class TestFramer:
    @pytest.mark.parametrize("n", [1, 3, 12, 48])
    def test_frame_size(self, n):
        framer = SonetFramer(n)
        wire = framer.build(make_payload(framer))
        assert len(wire) == ROWS * 90 * n

    def test_framing_bytes_unscrambled(self):
        framer = SonetFramer(3)
        wire = framer.build(make_payload(framer))
        assert wire[:3] == bytes([A1] * 3)
        assert wire[3:6] == bytes([A2] * 3)

    def test_payload_length_enforced(self):
        framer = SonetFramer(3)
        with pytest.raises(SonetError):
            framer.build(b"short")

    def test_pointer_validated(self):
        with pytest.raises(PointerError):
            SonetFramer(3, pointer=783)

    def test_frame_wire_round_trip(self):
        framer = SonetFramer(3)
        wire = framer.build(make_payload(framer))
        frame = SonetFrame.from_wire(wire, 3)
        assert frame.to_wire() == wire

    def test_from_wire_validates_length(self):
        with pytest.raises(SonetError):
            SonetFrame.from_wire(b"short", 3)

    def test_bip8_definition(self):
        data = np.array([0b1100, 0b1010], dtype=np.uint8)
        assert _bip8(data) == 0b0110


class TestRxAlignment:
    def _link(self, n=3, **kw):
        return SonetFramer(n), SonetRxFramer(n, **kw)

    def test_round_trip_payload(self, rng):
        tx, rx = self._link()
        sent = rng.integers(0, 256, tx.payload_bytes_per_frame,
                            dtype=np.uint8).tobytes()
        rx.feed(tx.build(sent))          # frame 1: presync
        got = rx.feed(tx.build(sent))    # keeps flowing
        assert got == sent

    def test_alignment_after_junk(self, rng):
        tx, rx = self._link()
        junk = bytes(b for b in rng.integers(0, 256, 777, dtype=np.uint8)
                     if True)
        payload = make_payload(tx)
        rx.feed(junk)
        for _ in range(3):
            rx.feed(tx.build(payload))
        assert rx.state is FramerState.SYNC
        assert rx.counters.bytes_discarded_hunting >= 1

    def test_chunked_feed(self, rng):
        tx, rx = self._link()
        payload = rng.integers(0, 256, tx.payload_bytes_per_frame,
                               dtype=np.uint8).tobytes()
        wire = b"".join(tx.build(payload) for _ in range(4))
        got = b""
        for i in range(0, len(wire), 53):   # ATM-cell-sized chunks, why not
            got += rx.feed(wire[i : i + 53])
        assert got == payload * 4

    def test_presync_requires_two_frames(self):
        tx, rx = self._link()
        rx.feed(tx.build(make_payload(tx)))
        assert rx.state is FramerState.PRESYNC
        rx.feed(tx.build(make_payload(tx)))
        assert rx.state is FramerState.SYNC

    def test_loss_of_alignment_rehunts(self, rng):
        tx, rx = self._link(oof_threshold=1)
        payload = make_payload(tx)
        for _ in range(3):
            rx.feed(tx.build(payload))
        assert rx.state is FramerState.SYNC
        # Slip the stream by a few bytes: framing breaks.
        rx.feed(bytes(5))
        for _ in range(3):
            rx.feed(tx.build(payload))
        assert rx.counters.oof_events >= 1
        # It eventually re-locks.
        for _ in range(3):
            rx.feed(tx.build(payload))
        assert rx.state is FramerState.SYNC


class TestOverheadMonitoring:
    def test_clean_link_no_parity_errors(self, rng):
        tx = SonetFramer(3)
        rx = SonetRxFramer(3, expected_c2=SONET_C2_PPP_SCRAMBLED)
        for _ in range(6):
            payload = rng.integers(0, 256, tx.payload_bytes_per_frame,
                                   dtype=np.uint8).tobytes()
            rx.feed(tx.build(payload))
        c = rx.counters
        assert c.b1_errors == 0 and c.b2_errors == 0 and c.b3_errors == 0
        assert c.c2_mismatches == 0 and c.frames_ok == 6

    def test_corruption_hits_bip(self, rng):
        tx = SonetFramer(3)
        rx = SonetRxFramer(3)
        payload = make_payload(tx)
        rx.feed(tx.build(payload))
        rx.feed(tx.build(payload))
        wire = bytearray(tx.build(payload))
        wire[500] ^= 0x04           # corrupt one payload byte
        rx.feed(bytes(wire))
        rx.feed(tx.build(payload))  # parity for the dirty frame lands here
        assert rx.counters.b1_errors >= 1
        assert rx.counters.b3_errors >= 1

    def test_c2_mismatch_detected(self):
        tx = SonetFramer(3, c2=0xCF)
        rx = SonetRxFramer(3, expected_c2=SONET_C2_PPP_SCRAMBLED)
        for _ in range(2):
            rx.feed(tx.build(make_payload(tx)))
        assert rx.counters.c2_mismatches >= 1

    def test_nonzero_pointer_followed(self, rng):
        tx = SonetFramer(3, pointer=100)
        rx = SonetRxFramer(3)
        sent = rng.integers(0, 256, tx.payload_bytes_per_frame,
                            dtype=np.uint8).tobytes()
        rx.feed(tx.build(sent))
        got = rx.feed(tx.build(sent))
        assert got == sent

    def test_scramble_flag_must_match(self):
        tx = SonetFramer(3, scramble=False)
        rx = SonetRxFramer(3, descramble=False)
        payload = make_payload(tx)
        rx.feed(tx.build(payload))
        got = rx.feed(tx.build(payload))
        assert got == payload
