"""Integration tests: PPP over SONET (RFC 1619 / RFC 2615)."""

import pytest

from repro.sonet import PppOverSonet
from repro.workloads import ppp_frame_contents


@pytest.mark.parametrize("scrambling", [True, False], ids=["rfc2615", "rfc1619"])
class TestPathRoundTrip:
    def test_frames_recovered(self, scrambling):
        path = PppOverSonet(12, payload_scrambling=scrambling)
        frames = ppp_frame_contents(15, seed=1)
        for frame in frames:
            path.queue_frame(frame)
        got = []
        while path.tx_backlog_frames or len(got) < len(frames):
            got += path.receive_line(path.next_line_frame())
            if len(got) >= len(frames):
                break
        assert got == frames
        assert path.hdlc_stats.total_errors() == 0

    def test_idle_line_is_flag_fill(self, scrambling):
        """An empty queue still produces full frames (flag idle fill)."""
        path = PppOverSonet(3, payload_scrambling=scrambling)
        wire = path.next_line_frame()
        assert len(wire) == 9 * 270
        got = path.receive_line(wire)
        got += path.receive_line(path.next_line_frame())
        assert got == []
        assert path.hdlc_stats.total_errors() == 0


class TestRates:
    def test_oc48_carries_imix_burst(self):
        path = PppOverSonet(48)
        frames = ppp_frame_contents(40, seed=2)
        for frame in frames:
            path.queue_frame(frame)
        got = []
        for _ in range(4):   # 4 frames x 125us is plenty for 40 packets
            got += path.receive_line(path.next_line_frame())
        assert got == frames

    def test_backlog_drains_over_time(self):
        path = PppOverSonet(3)
        big = [b"\xff\x03\x00\x21" + bytes(1000) for _ in range(6)]
        for frame in big:
            path.queue_frame(frame)
        assert path.tx_backlog_frames > 0
        got = []
        for _ in range(8):
            got += path.receive_line(path.next_line_frame())
        assert got == big


class TestMisalignment:
    def test_rx_joins_late(self):
        path = PppOverSonet(3)
        # First line frame reaches the receiver clipped (powered up
        # late); it carries only idle flags and is lost to hunting.
        got = path.receive_line(path.next_line_frame()[100:])
        frames = ppp_frame_contents(5, seed=3)
        for frame in frames:
            path.queue_frame(frame)
        for _ in range(4):
            got += path.receive_line(path.next_line_frame())
        # The x^43+1 descrambler needs 43 bits to self-synchronise, so
        # the opening of the very first PPP frame is garbled and that
        # frame is lost to HDLC hunting; everything after is intact.
        assert got == frames[1:]
        assert path.hdlc_stats.octets_discarded_hunting > 0
