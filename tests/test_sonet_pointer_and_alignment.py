"""SONET pointer interpretation and alignment robustness details."""

import numpy as np
import pytest

from repro.errors import PointerError
from repro.sonet import FramerState, SonetFramer, SonetRxFramer


def payload_for(framer, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, framer.payload_bytes_per_frame,
                        dtype=np.uint8).tobytes()


class TestPointerSweep:
    @pytest.mark.parametrize("pointer", [0, 1, 86, 260, 500, 782])
    def test_any_pointer_round_trips(self, pointer):
        tx = SonetFramer(3, pointer=pointer)
        rx = SonetRxFramer(3)
        sent = payload_for(tx, seed=pointer)
        rx.feed(tx.build(sent))
        got = rx.feed(tx.build(sent))
        assert got == sent
        assert rx.counters.pointer_invalid == 0

    def test_pointer_bounds(self):
        with pytest.raises(PointerError):
            SonetFramer(3, pointer=783)
        with pytest.raises(PointerError):
            SonetFramer(3, pointer=-1)

    def test_mismatched_pointer_still_decodes_consistently(self):
        """The RX follows whatever pointer the TX wrote — it never
        assumes a fixed offset."""
        for pointer in (0, 37):
            tx = SonetFramer(12, pointer=pointer)
            rx = SonetRxFramer(12)
            sent = payload_for(tx, seed=3)
            rx.feed(tx.build(sent))
            assert rx.feed(tx.build(sent)) == sent


class TestLofEscalation:
    def test_lof_after_persistent_oof(self):
        tx = SonetFramer(3)
        rx = SonetRxFramer(3, oof_threshold=1, lof_threshold=2)
        good = payload_for(tx)
        for _ in range(3):
            rx.feed(tx.build(good))
        assert rx.state is FramerState.SYNC
        # Feed garbage for many frame times: OOF then LOF.
        for _ in range(6):
            rx.feed(bytes(rx.frame_bytes))
        assert rx.counters.oof_events >= 1
        assert rx.counters.lof_events >= 1

    def test_recovery_after_lof(self):
        tx = SonetFramer(3)
        rx = SonetRxFramer(3, oof_threshold=1, lof_threshold=2)
        good = payload_for(tx)
        for _ in range(3):
            rx.feed(tx.build(good))
        for _ in range(4):
            rx.feed(bytes(rx.frame_bytes))
        # Clean signal returns: re-hunt, presync, sync.
        for _ in range(4):
            rx.feed(tx.build(good))
        assert rx.state is FramerState.SYNC

    def test_parity_state_reset_on_resync(self):
        """After re-hunting, stale B1/B3 latches must not fire."""
        tx = SonetFramer(3)
        rx = SonetRxFramer(3, oof_threshold=1)
        good = payload_for(tx)
        for _ in range(3):
            rx.feed(tx.build(good))
        rx.feed(bytes(10))   # slip
        b1_before = rx.counters.b1_errors
        for _ in range(4):
            rx.feed(tx.build(good))
        # One bounded burst of parity noise at the re-lock is
        # acceptable; it must not grow on subsequent clean frames.
        b1_at_relock = rx.counters.b1_errors
        for _ in range(4):
            rx.feed(tx.build(good))
        assert rx.counters.b1_errors <= b1_at_relock + 1


class TestScramblerInterop:
    def test_scrambled_tx_plain_rx_never_locks_for_long(self):
        tx = SonetFramer(3, scramble=True)
        rx = SonetRxFramer(3, descramble=False, oof_threshold=1)
        payload = payload_for(tx)
        recovered = b""
        for _ in range(5):
            recovered += rx.feed(tx.build(payload))
        # A1/A2 are unscrambled so alignment can occur, but payload
        # comes out scrambled — it must NOT equal the sent payload.
        assert payload not in recovered

    def test_b1_catches_single_line_error(self):
        tx = SonetFramer(3)
        rx = SonetRxFramer(3)
        payload = payload_for(tx)
        rx.feed(tx.build(payload))
        rx.feed(tx.build(payload))
        damaged = bytearray(tx.build(payload))
        damaged[100] ^= 0x10
        rx.feed(bytes(damaged))
        rx.feed(tx.build(payload))   # parity report lands next frame
        assert rx.counters.b1_errors == 1
