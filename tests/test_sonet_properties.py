"""Property-based tests for the SONET layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sonet import PppOverSonet, SonetFramer, SonetRxFramer
from repro.sonet.scrambler import SelfSyncScrambler


@given(data=st.binary(min_size=0, max_size=600))
def test_selfsync_round_trip(data):
    tx, rx = SelfSyncScrambler(), SelfSyncScrambler()
    assert rx.descramble(tx.scramble(data)) == data


@given(
    data=st.binary(min_size=1, max_size=400),
    cuts=st.lists(st.integers(min_value=1, max_value=399), max_size=5),
)
def test_selfsync_chunking_invariance(data, cuts):
    """The scrambler's state carries across arbitrary chunk boundaries."""
    whole = SelfSyncScrambler().scramble(data)
    tx = SelfSyncScrambler()
    out = b""
    last = 0
    for cut in sorted(set(c for c in cuts if c < len(data))):
        out += tx.scramble(data[last:cut])
        last = cut
    out += tx.scramble(data[last:])
    assert out == whole


@settings(max_examples=20, deadline=None)
@given(
    payload_seed=st.integers(min_value=0, max_value=2**16),
    chunk=st.integers(min_value=1, max_value=4000),
    junk=st.binary(max_size=50),
)
def test_framer_alignment_chunking_invariance(payload_seed, chunk, junk):
    """Any leading junk and any chunking: payload recovery identical."""
    rng = np.random.default_rng(payload_seed)
    tx = SonetFramer(3)
    payloads = [
        rng.integers(0, 256, tx.payload_bytes_per_frame, dtype=np.uint8).tobytes()
        for _ in range(4)
    ]
    wire = junk + b"".join(tx.build(p) for p in payloads)
    rx = SonetRxFramer(3)
    got = b""
    for offset in range(0, len(wire), chunk):
        got += rx.feed(wire[offset : offset + chunk])
    # Whatever alignment cost the junk incurred, recovered payload is a
    # suffix of the transmitted payload stream.
    assert b"".join(payloads).endswith(got)
    assert len(got) >= tx.payload_bytes_per_frame * 2  # most frames land


@settings(max_examples=20, deadline=None)
@given(
    frames=st.lists(st.binary(min_size=5, max_size=200), min_size=1, max_size=8),
    scrambling=st.booleans(),
)
def test_ppp_over_sonet_delivery(frames, scrambling):
    """Queued PPP contents always come back verbatim, in order."""
    contents = [b"\xff\x03\x00\x21" + f for f in frames]
    path = PppOverSonet(3, payload_scrambling=scrambling)
    for content in contents:
        path.queue_frame(content)
    got = []
    for _ in range(12):
        got += path.receive_line(path.next_line_frame())
        if len(got) == len(contents) and not path.tx_backlog_frames:
            break
    assert got == contents
    assert path.hdlc_stats.total_errors() == 0
