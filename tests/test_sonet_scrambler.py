"""Unit tests for the SONET scramblers."""

import numpy as np
import pytest

from repro.sonet.scrambler import FrameSyncScrambler, SelfSyncScrambler


class TestFrameSync:
    def test_period_127(self):
        """1 + x^6 + x^7 is maximal-length: period 127 bits."""
        stream = FrameSyncScrambler().sequence(127 * 2)
        bits = np.unpackbits(stream)
        assert np.array_equal(bits[:127], bits[127:254])
        # and no shorter period dividing 127 (127 is prime: check != all-same)
        assert bits[:127].sum() not in (0, 127)

    def test_starts_all_ones(self):
        """Seed 1111111 makes the first 7 output bits ones."""
        first = FrameSyncScrambler().sequence(1)[0]
        assert first >> 1 == 0x7F   # top seven bits set

    def test_deterministic(self):
        assert np.array_equal(
            FrameSyncScrambler().sequence(100), FrameSyncScrambler().sequence(100)
        )

    def test_apply_is_involution(self, rng):
        data = rng.integers(0, 256, 500, dtype=np.uint8)
        scrambler = FrameSyncScrambler()
        assert np.array_equal(scrambler.apply(scrambler.apply(data)), data)

    def test_balanced_output(self):
        """Roughly half the keystream bits are ones (DC balance)."""
        bits = np.unpackbits(FrameSyncScrambler().sequence(1270))
        assert 0.45 < bits.mean() < 0.55


class TestSelfSync:
    def test_round_trip_single_call(self, rng):
        data = rng.integers(0, 256, 1000, dtype=np.uint8).tobytes()
        tx, rx = SelfSyncScrambler(), SelfSyncScrambler()
        assert rx.descramble(tx.scramble(data)) == data

    def test_round_trip_chunked(self, rng):
        """State carries across calls: chunking must not matter."""
        data = rng.integers(0, 256, 997, dtype=np.uint8).tobytes()
        tx, rx = SelfSyncScrambler(), SelfSyncScrambler()
        out = b""
        for i in range(0, len(data), 100):
            out += rx.descramble(tx.scramble(data[i : i + 100]))
        assert out == data

    def test_chunked_equals_whole(self, rng):
        data = rng.integers(0, 256, 500, dtype=np.uint8).tobytes()
        whole = SelfSyncScrambler().scramble(data)
        tx = SelfSyncScrambler()
        chunked = tx.scramble(data[:123]) + tx.scramble(data[123:])
        assert chunked == whole

    def test_self_synchronisation(self, rng):
        """A receiver joining mid-stream recovers after 43 bits."""
        data = rng.integers(0, 256, 400, dtype=np.uint8).tobytes()
        scrambled = SelfSyncScrambler().scramble(data)
        late_rx = SelfSyncScrambler()            # wrong (zero) state
        recovered = late_rx.descramble(scrambled[8:])   # skip 64 bits
        # After the first ceil(43/8)=6 bytes, output matches the source.
        assert recovered[6:] == data[8 + 6 :]

    def test_error_propagation_limited(self, rng):
        """One flipped bit corrupts at most 2 bits, 43 bits apart."""
        data = rng.integers(0, 256, 200, dtype=np.uint8).tobytes()
        scrambled = bytearray(SelfSyncScrambler().scramble(data))
        scrambled[50] ^= 0x10
        recovered = SelfSyncScrambler().descramble(bytes(scrambled))
        diff = np.unpackbits(
            np.frombuffer(recovered, dtype=np.uint8)
            ^ np.frombuffer(data, dtype=np.uint8)
        )
        assert diff.sum() == 2
        positions = np.flatnonzero(diff)
        assert positions[1] - positions[0] == 43

    def test_breaks_constant_payloads(self):
        """The RFC 2615 motivation: constant payloads gain transitions."""
        killer = bytes(1000)   # all zeros
        scrambled = SelfSyncScrambler().scramble(killer)
        assert scrambled == killer  # zeros stay zeros from zero state...
        tx = SelfSyncScrambler()
        tx.scramble(b"\xa5" * 10)  # ...but any prior traffic seeds state
        scrambled = tx.scramble(killer)
        bits = np.unpackbits(np.frombuffer(scrambled, dtype=np.uint8))
        assert 0 < bits.mean() < 1

    def test_reset(self, rng):
        data = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
        tx = SelfSyncScrambler()
        first = tx.scramble(data)
        tx.reset()
        assert tx.scramble(data) == first

    def test_empty(self):
        assert SelfSyncScrambler().scramble(b"") == b""
        assert SelfSyncScrambler().descramble(b"") == b""
