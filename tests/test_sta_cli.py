"""The ``repro sta`` subcommand and the shared SARIF reporter."""

import json
import pathlib

from repro.cli import main
from repro.lint import RULES, SARIF_VERSION, Finding, render_sarif

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"


class TestStaCommand:
    def test_canonical_topologies_exit_zero(self, capsys):
        assert main(["sta"]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_json_report(self, capsys):
        assert main(["sta", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"error": 0, "warning": 0}
        assert payload["findings"] == []

    def test_sarif_report(self, capsys):
        assert main(["sta", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        assert log["runs"][0]["results"] == []

    def test_custom_clock_only_rescales_reporting(self, capsys):
        # Budgets are in cycles; a slower clock changes ns figures only.
        assert main(["sta", "--clock-mhz", "19.44"]) == 0

    def test_nonpositive_clock_is_a_usage_error(self, capsys):
        assert main(["sta", "--clock-mhz", "0"]) == 2


class TestSarifReporter:
    def _log(self, findings):
        return json.loads(render_sarif(findings))

    def test_lint_cli_emits_valid_sarif(self, capsys):
        assert main(["lint", "--no-graph", "--format", "sarif",
                     "--path", str(FIXTURES / "bad_bare_flag.py")]) == 1
        log = json.loads(capsys.readouterr().out)
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {r["id"] for r in driver["rules"]} == {"P5L003"}
        for result in log["runs"][0]["results"]:
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(
                "bad_bare_flag.py"
            )
            assert location["region"]["startLine"] >= 1

    def test_rules_catalogue_limited_to_referenced_codes(self):
        findings = [Finding.of("P5T002", "too small", subject="ch")]
        (rule,) = self._log(findings)["runs"][0]["tool"]["driver"]["rules"]
        assert rule["id"] == "P5T002"
        assert rule["name"] == RULES["P5T002"].name
        assert rule["defaultConfiguration"]["level"] == "error"
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]

    def test_graph_findings_carry_logical_locations(self):
        findings = [Finding.of("P5T003", "ring wedge", subject="fifo")]
        (result,) = self._log(findings)["runs"][0]["results"]
        (logical,) = result["locations"][0]["logicalLocations"]
        assert logical["name"] == "fifo"
        assert result["ruleId"] == "P5T003"
        assert result["level"] == "error"

    def test_warning_level_preserved(self):
        findings = [Finding.of("P5T005", "no contract", subject="m")]
        (result,) = self._log(findings)["runs"][0]["results"]
        assert result["level"] == "warning"

    def test_output_is_stable_across_runs(self):
        findings = [
            Finding.of("P5T005", "b", subject="z"),
            Finding.of("P5T002", "a", subject="y"),
        ]
        assert render_sarif(findings) == render_sarif(list(reversed(findings)))
        ordered = self._log(findings)["runs"][0]["results"]
        assert [r["ruleId"] for r in ordered] == ["P5T002", "P5T005"]
