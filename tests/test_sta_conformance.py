"""Conformance mode: declared contracts cross-checked against live runs."""

import pytest

from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.errors import ContractViolationError
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import StreamSink, StreamSource, beats_from_bytes
from repro.rtl.simulator import Simulator


class Mover(Module):
    """Honest one-cycle stage: declaration matches behaviour."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)

    def clock(self):
        if self.inp.can_pop and self.out.can_push:
            self.out.push(self.inp.pop())

    def timing_contract(self):
        return TimingContract(
            latency_cycles=1, outputs=(ChannelTiming(self.out),)
        )


class SlowMover(Mover):
    """Takes two cycles per word but lies that it takes one."""

    def __init__(self, name, inp, out):
        super().__init__(name, inp, out)
        self._held = None

    def clock(self):
        if self._held is not None and self.out.can_push:
            self.out.push(self._held)
            self._held = None
        elif self._held is None and self.inp.can_pop:
            self._held = self.inp.pop()


class Duplicator(Mover):
    """Pushes every beat twice while declaring x1 expansion, burst 1."""

    def clock(self):
        if self.inp.can_pop and self.out.capacity - self.out.occupancy >= 2:
            beat = self.inp.pop()
            self.out.push(beat)
            self.out.push(beat)


def pipeline(stage_cls, payload=bytes(range(32)), capacity=4):
    c_in = Channel("in", capacity=capacity)
    c_out = Channel("out", capacity=capacity)
    source = StreamSource("src", c_in, beats_from_bytes(payload, 4))
    stage = stage_cls("stage", c_in, c_out)
    sink = StreamSink("sink", c_out)
    sim = Simulator([source, stage, sink], [c_in, c_out])
    return source, stage, sim


class TestCleanRuns:
    def test_honest_pipeline_passes_strict_conformance(self):
        source, _stage, sim = pipeline(Mover)
        monitor = sim.enable_conformance()
        sim.run_until(lambda: source.done, timeout=1_000)
        sim.drain(timeout=1_000)
        assert monitor.findings() == []

    def test_real_escape_unit_honours_its_contract(self):
        # Adversarial payload: every octet needs stuffing (x2 expansion).
        payload = bytes([0x7E] * 32)
        c_in = Channel("in", capacity=2)
        c_out = Channel("out", capacity=4)
        source = StreamSource("src", c_in, beats_from_bytes(payload, 4))
        gen = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
        sink = StreamSink("sink", c_out)
        sim = Simulator([source, gen, sink], [c_in, c_out])
        sim.enable_conformance()
        sim.run_until(lambda: source.done and gen.idle, timeout=2_000)
        sim.drain(timeout=2_000)      # strict: would raise on violation


class TestViolations:
    def test_lying_latency_fails_the_run(self):
        source, _stage, sim = pipeline(SlowMover)
        sim.enable_conformance()
        with pytest.raises(ContractViolationError, match="latency"):
            sim.run_until(lambda: source.done, timeout=1_000)
            sim.drain(timeout=1_000)

    def test_lying_escape_contract_fails_the_run(self):
        class LyingEscape(PipelinedEscapeGenerate):
            def timing_contract(self):
                base = super().timing_contract()
                return TimingContract(
                    latency_cycles=1,         # real fill is pipeline_stages
                    outputs=base.outputs,
                    buffers=base.buffers,
                )

        c_in = Channel("in", capacity=2)
        c_out = Channel("out", capacity=4)
        source = StreamSource(
            "src", c_in, beats_from_bytes(bytes(range(64)), 4)
        )
        gen = LyingEscape("gen", c_in, c_out, width_bytes=4)
        sink = StreamSink("sink", c_out)
        sim = Simulator([source, gen, sink], [c_in, c_out])
        sim.enable_conformance()
        with pytest.raises(ContractViolationError) as excinfo:
            sim.run_until(lambda: source.done and gen.idle, timeout=2_000)
        assert all(f.code == "P5T006" for f in excinfo.value.findings)

    def test_expansion_and_burst_violations_found(self):
        source, _stage, sim = pipeline(Duplicator)
        monitor = sim.enable_conformance(strict=False)
        sim.run_until(lambda: source.done, timeout=1_000)
        sim.drain(timeout=1_000)
        messages = [f.message for f in monitor.findings()]
        assert any("expansion" in m for m in messages)
        assert any("burst" in m for m in messages)

    def test_non_strict_monitor_collects_without_raising(self):
        source, _stage, sim = pipeline(SlowMover)
        monitor = sim.enable_conformance(strict=False)
        sim.run_until(lambda: source.done, timeout=1_000)
        sim.drain(timeout=1_000)
        assert monitor.findings()
        with pytest.raises(ContractViolationError):
            monitor.assert_ok()


class TestLatencyAccountingIsOneSided:
    def test_sparse_input_never_fakes_a_violation(self):
        """A starved honest stage must not be blamed for idle cycles."""

        class TricklingSource(StreamSource):
            def clock(self):
                if self._sim_cycle_gate():
                    super().clock()

            def _sim_cycle_gate(self):
                self._count = getattr(self, "_count", 0) + 1
                return self._count % 3 == 0      # push every third cycle

        c_in, c_out = Channel("in", capacity=4), Channel("out", capacity=4)
        source = TricklingSource("src", c_in, beats_from_bytes(bytes(24), 4))
        stage = Mover("stage", c_in, c_out)
        sink = StreamSink("sink", c_out)
        sim = Simulator([source, stage, sink], [c_in, c_out])
        monitor = sim.enable_conformance()
        sim.run_until(lambda: source.done, timeout=1_000)
        sim.drain(timeout=1_000)
        assert monitor.findings() == []
