"""Contract self-consistency (P5T004/P5T005) and the P5D009 DRC rule."""

import pytest

from repro.lint import Severity, lint_topology
from repro.rtl.module import (
    BufferBound,
    Channel,
    ChannelTiming,
    Module,
    TimingContract,
)
from repro.rtl.pipeline import StreamSink, StreamSource
from repro.sta import analyze_topology


class Declaring(Module):
    """Fixture stage returning whatever contract the test injects."""

    def __init__(self, name, inp, out, contract="default"):
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self._contract = contract

    def clock(self):
        if self.inp.can_pop and self.out.can_push:
            self.out.push(self.inp.pop())

    def timing_contract(self):
        if self._contract == "default":
            return TimingContract(
                latency_cycles=1, outputs=(ChannelTiming(self.out),)
            )
        return self._contract


def wired(contract):
    c_in, c_out = Channel("in"), Channel("out")
    stage = Declaring("stage", c_in, c_out, contract=contract)
    modules = [StreamSource("src", c_in, []), stage, StreamSink("sink", c_out)]
    return modules, [c_in, c_out], stage


def codes(findings):
    return sorted({f.code for f in findings})


class TestContractConsistency:
    def test_wellformed_contract_is_quiet(self):
        modules, channels, _ = wired("default")
        assert "P5T004" not in codes(analyze_topology(modules, channels))

    def test_nonpositive_latency_is_p5t004(self):
        modules, channels, _ = wired(TimingContract(latency_cycles=0))
        assert "P5T004" in codes(analyze_topology(modules, channels))

    def test_nonpositive_initiation_interval_is_p5t004(self):
        modules, channels, _ = wired(
            TimingContract(latency_cycles=1, initiation_interval=0)
        )
        assert "P5T004" in codes(analyze_topology(modules, channels))

    def test_timing_for_unwritten_channel_is_p5t004(self):
        foreign = Channel("foreign")
        modules, channels, _ = wired(
            TimingContract(latency_cycles=1, outputs=(ChannelTiming(foreign),))
        )
        findings = analyze_topology(modules, channels)
        assert any(
            f.code == "P5T004" and "foreign" in f.message for f in findings
        )

    def test_min_expansion_above_max_is_p5t004(self):
        modules, channels, stage = wired(None)
        stage._contract = TimingContract(
            latency_cycles=1,
            outputs=(
                ChannelTiming(stage.out, max_expansion=1.0, min_expansion=2.0),
            ),
        )
        assert "P5T004" in codes(analyze_topology(modules, channels))

    def test_sub_word_burst_is_p5t004(self):
        modules, channels, stage = wired(None)
        stage._contract = TimingContract(
            latency_cycles=1,
            outputs=(ChannelTiming(stage.out, burst_words=0),),
        )
        assert "P5T004" in codes(analyze_topology(modules, channels))

    def test_negative_buffer_sizing_is_p5t004(self):
        modules, channels, _ = wired(
            TimingContract(
                latency_cycles=1,
                buffers=(BufferBound("b", capacity=-1, min_required=0),),
            )
        )
        assert "P5T004" in codes(analyze_topology(modules, channels))

    def test_buffer_below_requirement_is_p5t002(self):
        modules, channels, _ = wired(
            TimingContract(
                latency_cycles=1,
                buffers=(BufferBound("b", capacity=1, min_required=3),),
            )
        )
        assert "P5T002" in codes(analyze_topology(modules, channels))

    def test_rejects_nonpositive_clock(self):
        modules, channels, _ = wired("default")
        with pytest.raises(ValueError):
            analyze_topology(modules, channels, clock_hz=0)


class TestUnconstrained:
    def test_undeclared_datapath_module_is_p5t005(self):
        class Quiet(Module):
            def __init__(self, name, inp, out):
                super().__init__(name)
                self.inp = self.reads(inp)
                self.out = self.writes(out)

            def clock(self):
                if self.inp.can_pop and self.out.can_push:
                    self.out.push(self.inp.pop())

        c_in, c_out = Channel("in"), Channel("out")
        quiet = Quiet("quiet", c_in, c_out)
        modules = [
            StreamSource("src", c_in, []), quiet, StreamSink("sink", c_out)
        ]
        findings = analyze_topology(modules, [c_in, c_out])
        flagged = [f for f in findings if f.code == "P5T005"]
        assert {f.subject for f in flagged} == {"quiet"}
        assert all(f.severity is Severity.WARNING for f in flagged)

    def test_unwired_module_is_not_flagged(self):
        class Lone(Module):
            def clock(self):
                pass

        assert analyze_topology([Lone("lone")]) == []


class TestP5D009:
    def _topology(self, stage_cls):
        c_in = Channel("in", capacity=4)
        c_out = Channel("out", capacity=4)
        stage = stage_cls("stage", c_in, c_out)
        modules = [
            StreamSource("src", c_in, []), stage, StreamSink("sink", c_out)
        ]
        return modules, [c_in, c_out]

    def test_undeclared_module_on_deep_channels_warned(self):
        class Bare(Module):
            def __init__(self, name, inp, out):
                super().__init__(name)
                self.inp = self.reads(inp)
                self.out = self.writes(out)

            def clock(self):
                if self.inp.can_pop and self.out.can_push:
                    self.out.push(self.inp.pop())

        modules, channels = self._topology(Bare)
        findings = [
            f for f in lint_topology(modules, channels) if f.code == "P5D009"
        ]
        assert {f.subject for f in findings} == {"stage"}
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_timing_contract_silences_the_warning(self):
        modules, channels = self._topology(Declaring)
        assert "P5D009" not in codes(lint_topology(modules, channels))

    def test_capacity_needs_silences_the_warning(self):
        class Sized(Module):
            def __init__(self, name, inp, out):
                super().__init__(name)
                self.inp = self.reads(inp)
                self.out = self.writes(out)

            def clock(self):
                if self.inp.can_pop and self.out.can_push:
                    self.out.push(self.inp.pop())

            def capacity_needs(self):
                return [(self.out, 2, "burst flush")]

        modules, channels = self._topology(Sized)
        assert "P5D009" not in codes(lint_topology(modules, channels))

    def test_single_word_channels_need_no_declaration(self):
        class Bare(Module):
            def __init__(self, name, inp, out):
                super().__init__(name)
                self.inp = self.reads(inp)
                self.out = self.writes(out)

            def clock(self):
                if self.inp.can_pop and self.out.can_push:
                    self.out.push(self.inp.pop())

        c_in, c_out = Channel("in"), Channel("out")
        stage = Bare("stage", c_in, c_out)
        modules = [
            StreamSource("src", c_in, []), stage, StreamSink("sink", c_out)
        ]
        assert "P5D009" not in codes(lint_topology(modules, [c_in, c_out]))
