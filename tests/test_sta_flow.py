"""The sta flow solver and deadlock-credit checker, plus their mutants."""

import pytest

from repro.core.escape_pipeline import PipelinedEscapeGenerate
from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import StreamSink, StreamSource
from repro.sta import (
    analyze_topology,
    canonical_findings,
    channel_demands,
    cumulative_expansion,
    cycle_credits,
)


class Expander(Module):
    """Fixture stage with declarable expansion and burst figures."""

    def __init__(self, name, inp, out, expansion=1.0, burst=1):
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self._expansion = expansion
        self._burst = burst

    def clock(self):
        if self.inp.can_pop and self.out.can_push:
            self.out.push(self.inp.pop())

    def timing_contract(self):
        return TimingContract(
            latency_cycles=1,
            outputs=(
                ChannelTiming(
                    self.out, max_expansion=self._expansion,
                    burst_words=self._burst,
                ),
            ),
        )


def codes(findings):
    return sorted({f.code for f in findings})


class TestChannelDemands:
    def test_defaults_to_one_word(self):
        ch = Channel("c", capacity=1)
        src = StreamSource("src", ch, [])
        sink = StreamSink("sink", ch)
        demands = {d.channel.name: d for d in channel_demands([src, sink], [ch])}
        assert demands["c"].required == 1

    def test_burst_declaration_raises_the_demand(self):
        c_in, c_out = Channel("in"), Channel("out", capacity=4)
        stage = Expander("e", c_in, c_out, burst=3)
        modules = [StreamSource("src", c_in, []), stage, StreamSink("sink", c_out)]
        demands = {d.channel.name: d for d in channel_demands(modules)}
        assert demands["out"].required == 3
        assert demands["out"].producer == "e"


class TestCumulativeExpansion:
    def test_ratios_compound_down_a_chain(self):
        c0, c1, c2 = Channel("c0"), Channel("c1"), Channel("c2")
        src = StreamSource("src", c0, [])
        double = Expander("double", c0, c1, expansion=2.0)
        pad = Expander("pad", c1, c2, expansion=1.5)
        sink = StreamSink("sink", c2)
        ratios = cumulative_expansion([src, double, pad, sink])
        assert ratios["c0"] == pytest.approx(1.0)
        assert ratios["c1"] == pytest.approx(2.0)
        assert ratios["c2"] == pytest.approx(3.0)

    def test_amplifying_cycle_reported_unbounded(self):
        c_in, c_ab, c_ba = Channel("in"), Channel("ab"), Channel("ba")
        src = StreamSource("src", c_in, [])
        a = Expander("a", c_in, c_ab, expansion=2.0)
        a.reads(c_ba)
        b = Expander("b", c_ab, c_ba)
        ratios = cumulative_expansion([src, a, b])
        assert ratios["ab"] is None
        assert ratios["ba"] is None


def ring(burst=1, capacity=1):
    """Two stages in a registered feedback ring, fed by a source."""
    c_in = Channel("in")
    c_ab = Channel("ab", capacity=capacity)
    c_ba = Channel("ba", capacity=capacity)
    src = StreamSource("src", c_in, [])
    a = Expander("a", c_in, c_ab, burst=burst)
    a.reads(c_ba)
    b = Expander("b", c_ab, c_ba)
    return [src, a, b], [c_in, c_ab, c_ba]


class TestCycleCredits:
    def test_registered_ring_with_enough_credit_is_deadlock_free(self):
        modules, channels = ring()
        (credit,) = cycle_credits(modules, channels)
        assert set(credit.modules) == {"a", "b"}
        assert credit.registered
        assert credit.credit == 2 and credit.demand == 2
        assert credit.deadlock_free

    def test_burst_demand_can_exceed_ring_credit(self):
        modules, channels = ring(burst=2)
        (credit,) = cycle_credits(modules, channels)
        assert credit.demand == 3 and credit.credit == 2
        assert not credit.deadlock_free

    def test_acyclic_chain_has_no_cycles(self):
        ch = Channel("c")
        modules = [StreamSource("src", ch, []), StreamSink("sink", ch)]
        assert cycle_credits(modules, [ch]) == []


class TestStaticMutants:
    """Each seeded defect must be caught without clocking a cycle."""

    def test_undersized_resync_buffer_is_a_p5t002(self):
        c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=4)
        gen = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
        gen.resync_capacity = 2          # below the static worst case
        findings = analyze_topology(
            [StreamSource("src", c_in, []), gen, StreamSink("sink", c_out)]
        )
        resync = [f for f in findings if f.code == "P5T002"]
        assert resync, codes(findings)
        assert any("resync" in f.message for f in resync)

    def test_undersized_channel_against_burst_is_a_p5t002(self):
        c_in, c_out = Channel("in"), Channel("out", capacity=2)
        stage = Expander("e", c_in, c_out, burst=4)
        findings = analyze_topology(
            [StreamSource("src", c_in, []), stage, StreamSink("sink", c_out)]
        )
        (shortfall,) = [f for f in findings if f.code == "P5T002"]
        assert "4" in shortfall.message and "2" in shortfall.message

    def test_zero_credit_ring_is_a_p5t003(self):
        modules, channels = ring(burst=2)
        findings = analyze_topology(modules, channels)
        assert "P5T003" in codes(findings)
        (deadlock,) = [f for f in findings if f.code == "P5T003"]
        assert "credit" in deadlock.message

    def test_healthy_ring_is_quiet(self):
        modules, channels = ring()
        findings = analyze_topology(modules, channels)
        assert "P5T003" not in codes(findings)

    def test_correctly_sized_escape_unit_is_quiet(self):
        c_in, c_out = Channel("in", capacity=2), Channel("out", capacity=4)
        gen = PipelinedEscapeGenerate("gen", c_in, c_out, width_bytes=4)
        findings = analyze_topology(
            [StreamSource("src", c_in, []), gen, StreamSink("sink", c_out)]
        )
        assert "P5T002" not in codes(findings)


def test_canonical_topologies_are_clean():
    assert canonical_findings() == []
