"""The sta path engine: latency bounds from contracts, no simulation."""

import pytest

from repro.rtl.module import Channel, ChannelTiming, Module, TimingContract
from repro.rtl.pipeline import StreamSink, StreamSource
from repro.sta import cycles_to_ns, end_to_end_paths, latency_between
from repro.sta.paths import enumerate_paths, path_latency


class Stage(Module):
    """Fixture stage with a configurable declared latency."""

    def __init__(self, name, inp, out, latency=1, declared=True, bound=True):
        super().__init__(name)
        self.inp = self.reads(inp)
        self.out = self.writes(out)
        self._latency = latency
        self._declared = declared
        self._bound = bound

    def clock(self):
        if self.inp.can_pop and self.out.can_push:
            self.out.push(self.inp.pop())

    def timing_contract(self):
        if not self._declared:
            return None
        return TimingContract(
            latency_cycles=self._latency,
            outputs=(ChannelTiming(self.out),),
            latency_is_bound=self._bound,
        )


def chain(latencies, **stage_kwargs):
    """src -> Stage(L) per entry -> sink; returns (modules, channels)."""
    channels = [Channel(f"c{i}") for i in range(len(latencies) + 1)]
    modules = [StreamSource("src", channels[0], [])]
    for i, latency in enumerate(latencies):
        modules.append(
            Stage(f"s{i}", channels[i], channels[i + 1],
                  latency=latency, **stage_kwargs)
        )
    modules.append(StreamSink("sink", channels[-1]))
    return modules, channels


class TestCyclesToNs:
    def test_paper_clock(self):
        # 78.125 MHz -> 12.8 ns per cycle; the 4-stage sorter fill.
        assert cycles_to_ns(4, 78.125e6) == pytest.approx(51.2)

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            cycles_to_ns(1, 0)


class TestPathLatency:
    def test_chain_is_sum_of_stage_latencies(self):
        modules, channels = chain([2, 3])
        bound = latency_between(modules, channels, source="src", sink="sink")
        # src(1) + 2 + 3 + sink(1)
        assert bound.cycles == 7
        assert bound.modules == ("src", "s0", "s1", "sink")
        assert bound.ns(78.125e6) == pytest.approx(7 * 12.8)

    def test_single_module_budget(self):
        modules, channels = chain([4])
        bound = latency_between(modules, channels, source="s0", sink="s0")
        assert bound.cycles == 4
        assert bound.modules == ("s0",)

    def test_undeclared_stage_unbounds_the_path(self):
        modules, channels = chain([2], declared=False)
        bound = latency_between(modules, channels, source="src", sink="sink")
        assert bound.cycles is None
        assert bound.unconstrained == ("s0",)
        assert bound.ns(78.125e6) is None

    def test_traffic_dependent_stage_marks_the_path(self):
        modules, channels = chain([2], bound=False)
        bound = latency_between(modules, channels, source="src", sink="sink")
        assert bound.cycles == 4
        assert bound.traffic_dependent

    def test_no_path_between_unrelated_modules(self):
        modules, channels = chain([1])
        assert latency_between(
            modules, channels, source="sink", sink="src"
        ) is None
        assert latency_between(
            modules, channels, source="nope", sink="sink"
        ) is None


class TestParallelPaths:
    def _diamond(self, slow_declared=True):
        c0, c_fast, c_slow, c_out = (Channel(n) for n in "abcd")
        src = StreamSource("src", c0, [])
        fast = Stage("fast", c0, c_fast, latency=1)
        slow = Stage("slow", c0, c_slow, latency=5, declared=slow_declared)
        join_fast = Stage("jf", c_fast, c_out, latency=1)
        join_slow = Stage("js", c_slow, c_out, latency=1)
        sink = StreamSink("sink", c_out)
        modules = [src, fast, slow, join_fast, join_slow, sink]
        return modules, [c0, c_fast, c_slow, c_out]

    def test_worst_parallel_path_wins(self):
        modules, channels = self._diamond()
        bound = latency_between(modules, channels, source="src", sink="sink")
        assert bound.cycles == 1 + 5 + 1 + 1       # the slow arm
        assert "slow" in bound.modules

    def test_unconstrained_parallel_path_dominates(self):
        modules, channels = self._diamond(slow_declared=False)
        bound = latency_between(modules, channels, source="src", sink="sink")
        assert bound.cycles is None
        assert bound.unconstrained == ("slow",)


class TestEnumeration:
    def test_ring_contributes_acyclic_traversals_only(self):
        c_in, c_ab, c_ba, c_out = (Channel(n) for n in ("in", "ab", "ba", "out"))
        src = StreamSource("src", c_in, [])
        a = Stage("a", c_in, c_ab)
        b = Stage("b", c_ab, c_ba)
        a.reads(c_ba)          # close the ring observationally
        a2_out = a.writes(c_out)
        assert a2_out is c_out
        sink = StreamSink("sink", c_out)
        paths = enumerate_paths([src, a, b, sink], [c_in, c_ab, c_ba, c_out])
        names = [[m.name for m in p] for p in paths]
        assert ["src", "a", "sink"] in names
        assert all(trail.count("a") == 1 for trail in names)

    def test_isolated_source_sink_module_is_a_path(self):
        class Lone(Module):
            def clock(self):
                pass

        lone = Lone("lone")
        paths = enumerate_paths([lone])
        assert [[m.name for m in p] for p in paths] == [["lone"]]

    def test_end_to_end_paths_cover_every_route(self):
        modules, channels = chain([1, 1])
        results = end_to_end_paths(modules, channels)
        assert len(results) == 1
        assert results[0].cycles == 4

    def test_path_latency_of_explicit_module_list(self):
        modules, _channels = chain([2, 3])
        result = path_latency(modules[1:3])
        assert result.cycles == 5
        assert result.unconstrained == ()
