"""Unit tests for the synthesis cost model (primitives, area, timing)."""

import pytest

from repro.core.config import P5Config
from repro.errors import DeviceCapacityError
from repro.synth import (
    DEVICES,
    Netlist,
    analyze_timing,
    crc_unit_area,
    delineator_area,
    escape_detect_area,
    escape_generate_area,
    get_device,
    synthesize,
    system_area,
    transmitter_area,
    receiver_area,
)
from repro.synth.primitives import (
    clog2,
    clog4,
    eq_const_comparator_luts,
    mux_luts,
    xor_tree_depth,
    xor_tree_luts,
)
from repro.synth.report import format_table


class TestPrimitives:
    def test_xor_tree_counts(self):
        assert xor_tree_luts(1) == 0
        assert xor_tree_luts(4) == 1
        assert xor_tree_luts(5) == 2
        assert xor_tree_luts(16) == 5

    def test_xor_tree_depth(self):
        assert xor_tree_depth(4) == 1
        assert xor_tree_depth(5) == 2
        assert xor_tree_depth(64) == 3

    def test_mux(self):
        assert mux_luts(1) == 0
        assert mux_luts(4, 8) == 8
        assert mux_luts(2, 1) == 1

    def test_logs(self):
        assert clog2(1) == 0 and clog2(8) == 3 and clog2(9) == 4
        assert clog4(1) == 0 and clog4(4) == 1 and clog4(5) == 2

    def test_comparator(self):
        assert eq_const_comparator_luts(8) == 3


class TestNetlist:
    def test_totals(self):
        n = Netlist("x")
        n.add("a", luts=3, ffs=2, depth=2)
        n.add("b", luts=5, ffs=1, depth=4)
        assert n.luts == 8 and n.ffs == 3 and n.depth == 4

    def test_merge_prefix(self):
        outer, inner = Netlist("sys"), Netlist("sub")
        inner.add("x", luts=1)
        outer.merge(inner, "tx")
        assert outer.entries[0].name == "tx/x"

    def test_by_group(self):
        n = Netlist("x")
        n.add("tx/a", luts=1, depth=1)
        n.add("tx/b", luts=2, depth=3)
        n.add("rx/c", luts=4)
        groups = n.by_group()
        assert groups["tx"] == {"luts": 3, "ffs": 0, "depth": 3}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Netlist("x").add("bad", luts=-1)

    def test_table_renders(self):
        n = Netlist("x")
        n.add("tx/a", luts=1)
        assert "TOTAL" in n.table()


class TestDevices:
    def test_library(self):
        assert set(DEVICES) == {"XCV50-4", "XCV600-4", "XC2V40-6", "XC2V1000-6"}

    def test_xc2v40_is_512_luts(self):
        """The capacity that makes the paper's percentages consistent."""
        assert get_device("XC2V40-6").luts == 512

    def test_virtex_ii_faster_per_level(self):
        """Paper: 'delay at each LUT is slightly greater with Virtex'."""
        assert (
            get_device("XC2V1000-6").lut_delay_ns
            < get_device("XCV600-4").lut_delay_ns
        )

    def test_post_layout_slower_than_pre(self):
        dev = get_device("XC2V1000-6")
        assert dev.fmax_mhz(6, post_layout=True) < dev.fmax_mhz(6, post_layout=False)

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("XC7Z020")


class TestPaperAnchors:
    """The calibration targets from the paper's tables and text."""

    def test_table3_8bit_escape_generate(self):
        """Paper Table 3: 22 LUTs, 6 FFs."""
        n = escape_generate_area(P5Config.eight_bit())
        assert n.luts == 22 and n.ffs == 6

    def test_table3_32bit_escape_generate(self):
        """Paper Table 3: 492 LUTs, 168 FFs (ours within ~3 %)."""
        n = escape_generate_area(P5Config.thirty_two_bit())
        assert abs(n.luts - 492) / 492 < 0.05
        assert abs(n.ffs - 168) / 168 < 0.05

    def test_escape_generate_ratios(self):
        """Paper: '25 times more combinational logic and 28 times as
        many flip-flops'."""
        small = escape_generate_area(P5Config.eight_bit())
        big = escape_generate_area(P5Config.thirty_two_bit())
        assert 20 <= big.luts / small.luts <= 28
        assert 24 <= big.ffs / small.ffs <= 32

    def test_system_ratio_about_11x(self):
        """Paper: 'The 32-bit P5 is approximately 11 times larger'."""
        small = system_area(P5Config.eight_bit())
        big = system_area(P5Config.thirty_two_bit())
        assert 9 <= big.luts / small.luts <= 13

    def test_not_4x(self):
        """The headline observation: width x4 but area much more."""
        small = system_area(P5Config.eight_bit())
        big = system_area(P5Config.thirty_two_bit())
        assert big.luts / small.luts > 2 * 4

    def test_sorter_dominates_growth(self):
        """'mainly due to the byte sorter and buffering mechanisms'."""
        big = escape_generate_area(P5Config.thirty_two_bit())
        groups = {e.name: e.luts for e in big.entries}
        sorter = groups["sorter_mux"] + groups["sorter_decision"]
        assert sorter / big.luts > 0.5

    def test_32bit_fits_25pct_of_xc2v1000(self):
        """Paper: 'approximately 25% of the resources of a XC2V-1000'."""
        report = synthesize(system_area(P5Config.thirty_two_bit()), "XC2V1000-6")
        assert 15 <= report.lut_pct <= 30

    def test_critical_path_6_levels(self):
        """Paper: 'passes through 6 [LUTs]' for the 32-bit system."""
        assert system_area(P5Config.thirty_two_bit()).depth == 6

    def test_only_virtex_ii_meets_78mhz(self):
        """Paper: speed requirements met with Virtex-II technology."""
        netlist = system_area(P5Config.thirty_two_bit())
        virtex = analyze_timing(netlist, get_device("XCV600-4"))
        virtex2 = analyze_timing(netlist, get_device("XC2V1000-6"))
        assert not virtex.meets(78.125)
        assert virtex2.meets(78.125)

    def test_critical_path_device_independent(self):
        """'the critical path is the same for each device'."""
        netlist = system_area(P5Config.thirty_two_bit())
        levels = {
            analyze_timing(netlist, get_device(d)).levels
            for d in ("XCV600-4", "XC2V1000-6")
        }
        assert len(levels) == 1


class TestScaling:
    def test_area_monotonic_in_width(self):
        areas = [
            system_area(P5Config(width_bits=w)).luts for w in (8, 16, 32, 64)
        ]
        assert areas == sorted(areas)

    def test_escape_detect_comparable_to_generate(self):
        cfg = P5Config.thirty_two_bit()
        gen, det = escape_generate_area(cfg), escape_detect_area(cfg)
        assert 0.7 <= det.luts / gen.luts <= 1.3

    def test_crc_partial_width_forests_only_above_8bit(self):
        c8 = crc_unit_area(P5Config.eight_bit(), "generate")
        c32 = crc_unit_area(P5Config.thirty_two_bit(), "generate")
        names8 = {e.name for e in c8.entries}
        names32 = {e.name for e in c32.entries}
        assert "forest_partials" not in names8
        assert "forest_partials" in names32

    def test_delineator_grows_with_width(self):
        d8 = delineator_area(P5Config.eight_bit())
        d32 = delineator_area(P5Config.thirty_two_bit())
        assert d32.luts > 5 * d8.luts

    def test_tx_rx_composition(self):
        cfg = P5Config.thirty_two_bit()
        total = system_area(cfg, include_oam=False)
        assert total.luts == transmitter_area(cfg).luts + receiver_area(cfg).luts


class TestFitter:
    def test_capacity_enforced(self):
        big = system_area(P5Config.thirty_two_bit())
        with pytest.raises(DeviceCapacityError):
            synthesize(big, "XC2V40-6")   # 512 LUTs cannot hold 2k

    def test_allow_overflow(self):
        big = system_area(P5Config.thirty_two_bit())
        report = synthesize(big, "XC2V40-6", allow_overflow=True)
        assert report.lut_pct > 100

    def test_report_row_format(self):
        report = synthesize(system_area(P5Config.eight_bit()), "XC2V40-6")
        row = report.row(post_layout=True)
        assert "XC2V40-6" in row and "MHz" in row and "%" in row

    def test_format_table(self):
        reports = [synthesize(system_area(P5Config.eight_bit()), d)
                   for d in ("XCV50-4", "XC2V40-6")]
        table = format_table("Table 1", reports)
        assert "Pre-layout" in table and "Post-layout" in table
