"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest

from repro.utils.bits import (
    bit_reflect,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hexdump,
    int_to_bits,
    parity,
    popcount,
)


class TestPopcountParity:
    def test_popcount_zero(self):
        assert popcount(0) == 0

    def test_popcount_all_ones_byte(self):
        assert popcount(0xFF) == 8

    def test_popcount_large(self):
        assert popcount((1 << 64) - 1) == 64

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_parity_even(self):
        assert parity(0b1010) == 0

    def test_parity_odd(self):
        assert parity(0b1011) == 1


class TestBitReflect:
    def test_nibble(self):
        assert bit_reflect(0b0001, 4) == 0b1000

    def test_byte(self):
        assert bit_reflect(0x80, 8) == 0x01

    def test_palindrome_fixed_point(self):
        assert bit_reflect(0b1001, 4) == 0b1001

    def test_involution(self):
        for value in (0x12345678, 0, 0xFFFFFFFF, 0xDEADBEEF):
            assert bit_reflect(bit_reflect(value, 32), 32) == value

    def test_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            bit_reflect(0x100, 8)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            bit_reflect(0, 0)


class TestIntBits:
    def test_msb_first_default(self):
        assert list(int_to_bits(0b1100, 4)) == [1, 1, 0, 0]

    def test_lsb_first(self):
        assert list(int_to_bits(0b1100, 4, lsb_first=True)) == [0, 0, 1, 1]

    def test_round_trip_msb(self):
        for value in (0, 1, 0xA5, 0xFFFF):
            assert bits_to_int(int_to_bits(value, 16)) == value

    def test_round_trip_lsb(self):
        for value in (0, 1, 0xA5, 0xFFFF):
            bits = int_to_bits(value, 16, lsb_first=True)
            assert bits_to_int(bits, lsb_first=True) == value

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)


class TestBytesBits:
    def test_msb_first_expansion(self):
        assert list(bytes_to_bits(b"\x80")) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_lsb_first_expansion(self):
        assert list(bytes_to_bits(b"\x80", lsb_first=True)) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_round_trip_both_orders(self):
        data = bytes(range(256))
        for lsb in (False, True):
            bits = bytes_to_bits(data, lsb_first=lsb)
            assert bits_to_bytes(bits, lsb_first=lsb) == data

    def test_rejects_ragged_bits(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))


class TestHexdump:
    def test_shows_offset_hex_and_ascii(self):
        dump = hexdump(b"Hello\x00World")
        assert "00000000" in dump
        assert "48 65 6c 6c 6f" in dump
        assert "|Hello.World|" in dump

    def test_multiline(self):
        dump = hexdump(bytes(40), width=16)
        assert len(dump.splitlines()) == 3
