"""Unit tests for the workload generators."""

import pytest

from repro.hdlc.constants import ESC_OCTET, FLAG_OCTET
from repro.ipv4 import Ipv4Datagram
from repro.ppp.frame import PPPFrame
from repro.workloads import (
    IMIX_SIMPLE,
    ImixProfile,
    PacketStream,
    all_flags_payload,
    flag_density_payload,
    imix_sizes,
    ppp_frame_contents,
    random_payload,
)


class TestImix:
    def test_simple_profile_mean(self):
        """7x40 + 4x576 + 1x1500 over 12 ~ 340 bytes."""
        assert IMIX_SIMPLE.mean_size == pytest.approx(340.3, abs=0.1)

    def test_sample_sizes_from_profile(self):
        sizes = imix_sizes(1000, seed=1)
        assert set(sizes) <= {40, 576, 1500}

    def test_sample_proportions(self):
        sizes = imix_sizes(12_000, seed=2)
        small = sizes.count(40) / len(sizes)
        assert small == pytest.approx(7 / 12, abs=0.03)

    def test_deterministic(self):
        assert imix_sizes(50, seed=3) == imix_sizes(50, seed=3)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ImixProfile("bad", (10,), (1,))
        with pytest.raises(ValueError):
            ImixProfile("bad", (40,), (1, 2))


class TestPayloads:
    def test_random_payload_length_and_determinism(self):
        assert len(random_payload(100, seed=1)) == 100
        assert random_payload(100, seed=1) == random_payload(100, seed=1)

    def test_flag_density_zero(self):
        payload = flag_density_payload(5000, 0.0, seed=1)
        assert FLAG_OCTET not in payload and ESC_OCTET not in payload

    def test_flag_density_one(self):
        payload = flag_density_payload(1000, 1.0, seed=1)
        assert all(b in (FLAG_OCTET, ESC_OCTET) for b in payload)

    def test_flag_density_mid(self):
        payload = flag_density_payload(20_000, 0.25, seed=1)
        density = sum(b in (FLAG_OCTET, ESC_OCTET) for b in payload) / len(payload)
        assert density == pytest.approx(0.25, abs=0.02)

    def test_density_validated(self):
        with pytest.raises(ValueError):
            flag_density_payload(10, 1.5)

    def test_all_flags(self):
        assert all_flags_payload(7) == bytes([FLAG_OCTET] * 7)


class TestPacketStream:
    def test_datagrams_are_valid_ipv4(self):
        stream = PacketStream(seed=1)
        for datagram in stream.datagrams(20):
            decoded = Ipv4Datagram.decode(datagram.encode())
            assert decoded.header.src == datagram.header.src

    def test_frame_contents_are_valid_ppp(self):
        for content in ppp_frame_contents(10, seed=2):
            frame = PPPFrame.decode(content)
            assert frame.protocol == 0x0021
            Ipv4Datagram.decode(frame.information)

    def test_sizes_follow_profile(self):
        stream = PacketStream(seed=3)
        sizes = {len(d) for d in stream.datagrams(200)}
        assert sizes <= {40, 576, 1500}

    def test_custom_address(self):
        content = PacketStream(seed=4).frame_contents(1, address=0x0B)[0]
        assert content[0] == 0x0B

    def test_reproducible(self):
        assert ppp_frame_contents(5, seed=5) == ppp_frame_contents(5, seed=5)
